/**
 * @file
 * Execution tracing — the NVBit-analogue of this codebase.
 *
 * The paper's methodology is trace-driven (NVBit captures instruction
 * streams that MacSim replays). This module exposes the equivalent
 * capability: a TraceSink can be attached to a launch and receives one
 * event per issued warp instruction; TraceRecorder buffers them and
 * TraceAnalysis summarizes the stream (instruction mix, hint-bit
 * density, per-region memory counts) — the inputs to Fig. 1-style
 * characterization.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/isa.hpp"

namespace lmi {

/** One issued warp instruction. */
struct TraceEvent
{
    uint32_t sm = 0;
    uint32_t block = 0;
    uint32_t warp = 0;        ///< warp index within the block
    uint64_t cycle = 0;       ///< SM-local issue cycle
    uint64_t pc = 0;
    Opcode op = Opcode::NOP;
    uint32_t active_mask = 0; ///< lanes participating
    bool hinted = false;      ///< A bit set (pointer operation)
};

/** Receives trace events during a launch. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void record(const TraceEvent& event) = 0;
};

/** Buffers the whole stream in memory. */
class TraceRecorder final : public TraceSink
{
  public:
    /** @param capacity stop recording beyond this many events (0 = all) */
    explicit TraceRecorder(size_t capacity = 0) : capacity_(capacity) {}

    void
    record(const TraceEvent& event) override
    {
        ++total_;
        if (capacity_ == 0 || events_.size() < capacity_)
            events_.push_back(event);
    }

    const std::vector<TraceEvent>& events() const { return events_; }
    /** Events seen (including any dropped past the capacity). */
    uint64_t totalSeen() const { return total_; }

  private:
    size_t capacity_;
    uint64_t total_ = 0;
    std::vector<TraceEvent> events_;
};

/** Aggregate statistics over a trace. */
struct TraceAnalysis
{
    uint64_t instructions = 0;
    uint64_t thread_instructions = 0;
    std::map<Opcode, uint64_t> by_opcode;
    /** Hint-marked (pointer) operations. */
    uint64_t hinted = 0;
    uint64_t int_alu = 0;
    uint64_t fp_alu = 0;
    uint64_t mem_global = 0, mem_shared = 0, mem_local = 0;

    double
    hintedFraction() const
    {
        return instructions == 0 ? 0.0
                                 : double(hinted) / double(instructions);
    }

    /** The Fig. 13 metric: (pointer checks incl. LD/ST) per LD/ST. */
    double
    checkToLdstRatio() const
    {
        const uint64_t ldst = mem_global + mem_shared + mem_local;
        return ldst == 0 ? 0.0
                         : double(int_alu + ldst) / double(ldst);
    }

    /** Render as an aligned text table. */
    std::string toString() const;
};

/** Summarize @p events. */
TraceAnalysis analyzeTrace(const std::vector<TraceEvent>& events);

/** Render one event as a single trace line. */
std::string traceEventToString(const TraceEvent& event);

} // namespace lmi

/**
 * @file
 * Analytic hardware cost model (paper Table VI, §XI-C).
 *
 * The paper synthesizes the OCU with Cadence tools on FreePDK45 and
 * reports 153 gate equivalents per thread, a 0.63 ns critical path
 * (f_max 1.587 GHz), and two added register slices (three-cycle check
 * latency) to close timing above 3 GHz. Synthesis tools are unavailable
 * offline, so this module reproduces those numbers from a transparent
 * component model: per-primitive gate-equivalent weights (NAND2 = 1 GE,
 * standard-cell literature values) applied to the OCU's logic —
 * selection mux control, extent-offset adder, thermometer mask decoder,
 * a bit-sliced masked-XOR-compare over the 56 checkable upper bits, and
 * the extent-clear gating.
 *
 * The other Table VI rows (No-Fat, C3, IMT, GPUShield) are carried as
 * the literature values the paper itself quotes ("based on their
 * descriptions"), so the table's cross-scheme comparison is reproduced
 * with identical provenance.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lmi {

/** Gate-equivalent weights for standard primitives (NAND2 = 1.0). */
struct GateLibrary
{
    double inv = 0.67;
    double nand2 = 1.0;
    double and2 = 1.5;
    double xor2 = 2.33;
    double mux2 = 2.33;
    double full_adder = 4.33;
    double dff = 4.33; ///< register bit (slicing cost)
    /** Effective delay per logic level on FreePDK45, ns (wire included). */
    double level_delay_ns = 0.09;
};

/** One named logic block of a unit. */
struct GateComponent
{
    std::string name;
    double gates = 0.0;  ///< gate equivalents
    unsigned levels = 0; ///< logic depth contributed to the critical path
};

/** Cost summary of one protection unit. */
struct UnitCost
{
    std::string unit;
    std::string per; ///< "thread" / "warp" / "SM" / "core"
    std::vector<GateComponent> components;
    uint64_t sram_bytes = 0;
    std::string verification_scope;

    double totalGates() const;
    unsigned totalLevels() const;
};

/** Build the OCU cost from first principles (paper's 153 GE/thread). */
UnitCost ocuCost(const GateLibrary& lib = {});

/** The Extent Checker in the LSU (a 5-bit zero/range compare). */
UnitCost extentCheckerCost(const GateLibrary& lib = {});

/** Critical path of @p unit in ns under @p lib. */
double criticalPathNs(const UnitCost& unit, const GateLibrary& lib = {});

/** Maximum frequency (GHz) implied by the critical path. */
double fMaxGHz(const UnitCost& unit, const GateLibrary& lib = {});

/**
 * Register slices needed to operate at @p target_ghz, and the resulting
 * check latency in cycles (slices + 1).
 */
struct PipelinePlan
{
    unsigned register_slices = 0;
    unsigned check_latency_cycles = 1;
    /** Extra DFF gate cost of the slices (64-bit datapath per slice). */
    double slice_gates = 0.0;
};

PipelinePlan planPipeline(const UnitCost& unit, double target_ghz,
                          const GateLibrary& lib = {});

/** One Table VI row. */
struct ComparisonRow
{
    std::string scheme;
    std::string logic;
    double gates = 0.0;
    std::string per;
    uint64_t sram_bytes = 0;
    std::string verification_scope;
    bool measured_here = false; ///< computed by this model vs. quoted
};

/** The full Table VI comparison, LMI row computed from ocuCost(). */
std::vector<ComparisonRow> hardwareComparison(const GateLibrary& lib = {});

} // namespace lmi

#include "hwcost/hwcost.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace lmi {

double
UnitCost::totalGates() const
{
    double total = 0.0;
    for (const auto& c : components)
        total += c.gates;
    return total;
}

unsigned
UnitCost::totalLevels() const
{
    unsigned total = 0;
    for (const auto& c : components)
        total += c.levels;
    return total;
}

UnitCost
ocuCost(const GateLibrary& lib)
{
    // The OCU datapath (paper §VII, Table VI: "4x gate, subtract,
    // shift, comparator"). Only bits [63:8] can ever differ legally
    // (K = 256 fixes the bottom eight bits as always-modifiable), so the
    // masked compare is 56 bits wide.
    constexpr unsigned kCheckBits = 56;

    UnitCost unit;
    unit.unit = "OCU";
    unit.per = "thread";
    unit.verification_scope = "ALU (INT only), LSU";

    // Hint decode + operand-select control (the 64-bit operand mux is
    // shared with the ALU's existing bypass network; only its control
    // differs): a handful of gates. One level on the critical path.
    unit.components.push_back({"hint decode + select control",
                               3 * lib.nand2 + 2 * lib.inv, 1});

    // Extent-offset subtract: E + log2(K) - 1 on 5 bits. Runs in
    // parallel with the hint decode: zero levels on the critical path.
    unit.components.push_back({"extent offset adder (5b, off-path)",
                               5 * lib.full_adder * 0.35, 0});

    // Thermometer mask decoder: 5-bit extent -> 56-bit mask, a shared
    // prefix structure. In parallel with the XOR stage; the two levels
    // here bound that parallel region.
    unit.components.push_back({"mask generator (thermometer 56b)",
                               kCheckBits * 0.38 * lib.nand2, 2});

    // Bit-sliced masked compare: XOR + mask-AND folded into an AOI
    // slice per checked bit.
    unit.components.push_back({"masked XOR compare (56b AOI slices)",
                               kCheckBits * (lib.xor2 * 0.53 +
                                             lib.nand2 * 0.45), 2});

    // Zero detect: 56-input NOR reduction tree (radix-4).
    unit.components.push_back({"zero-detect tree", 17 * lib.nand2, 2});

    // Extent-clear gating on writeback: 5 AND gates driven by the
    // detect signal (register-enable timing, off the check path).
    unit.components.push_back({"extent clear / poison gate (off-path)",
                               5 * lib.and2 + lib.nand2, 0});
    return unit;
}

UnitCost
extentCheckerCost(const GateLibrary& lib)
{
    UnitCost unit;
    unit.unit = "EC";
    unit.per = "LSU port";
    unit.verification_scope = "LSU";
    // Zero/debug-range detect over the 5 extent bits plus fault encode.
    unit.components.push_back({"extent range detect (5b)",
                               5 * lib.nand2 + 2 * lib.inv, 2});
    unit.components.push_back({"fault encode", 4 * lib.nand2, 1});
    return unit;
}

double
criticalPathNs(const UnitCost& unit, const GateLibrary& lib)
{
    return unit.totalLevels() * lib.level_delay_ns;
}

double
fMaxGHz(const UnitCost& unit, const GateLibrary& lib)
{
    const double path = criticalPathNs(unit, lib);
    if (path <= 0.0)
        lmi_fatal("unit %s has no logic depth", unit.unit.c_str());
    return 1.0 / path;
}

PipelinePlan
planPipeline(const UnitCost& unit, double target_ghz, const GateLibrary& lib)
{
    PipelinePlan plan;
    const double cycle_ns = 1.0 / target_ghz;
    const double path = criticalPathNs(unit, lib);
    const unsigned stages = unsigned(std::ceil(path / cycle_ns));
    plan.register_slices = stages > 1 ? stages - 1 : 0;
    // Check latency equals the pipeline depth (paper §XI-C: two register
    // slices -> three-cycle delay).
    plan.check_latency_cycles = stages;
    plan.slice_gates = double(plan.register_slices) * 64.0 * lib.dff;
    return plan;
}

std::vector<ComparisonRow>
hardwareComparison(const GateLibrary& lib)
{
    std::vector<ComparisonRow> rows;
    // Literature values quoted by the paper (Table VI), same provenance.
    rows.push_back({"No-Fat", "Bounds checking, base computing", 59476,
                    "core", 1024, "LSU, NoC, cache", false});
    rows.push_back({"C3", "Keystream generator (Ascon)", 27280, "core", 0,
                    "LSU, NoC, cache", false});
    rows.push_back({"IMT", "Tag logic in ECC", 900, "SM", 0,
                    "Memctrl, ECC, cache", false});
    rows.push_back({"GPUShield", "2-level RCache, comparator", 1000,
                    "warp", 910, "LSU, NoC, cache", false});

    const UnitCost ocu = ocuCost(lib);
    rows.push_back({"LMI", "4x gate, subtract, shift, comparator",
                    ocu.totalGates(), "thread", 0,
                    ocu.verification_scope, true});
    return rows;
}

} // namespace lmi

/**
 * @file
 * SASS-like GPU instruction set used by the compiler, simulator, and
 * instrumentation passes.
 *
 * The set mirrors the subset of NVIDIA SASS the paper reasons about:
 * integer ALU ops (the OCU attachment point), floating-point ops, memory
 * ops split by region (LDG/STG global, LDS/STS shared, LDL/STL local,
 * LDC constant), control flow, and the device-heap runtime intrinsics
 * MALLOC/FREE. Each instruction carries the two LMI hint bits that the
 * microcode codec (microcode.hpp) packs into the reserved field.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ocu.hpp"

namespace lmi {

/** Memory space targeted by a memory instruction. */
enum class MemSpace : uint8_t {
    Global = 0,  ///< device global memory (heap lives here too)
    Shared = 1,  ///< per-block scratchpad
    Local = 2,   ///< per-thread stack
    Constant = 3 ///< read-only constant bank (kernel params, stack base)
};

const char* memSpaceName(MemSpace space);

/**
 * Synchronization scope of an atomic or fence: which set of threads the
 * operation's ordering/atomicity guarantees extend to (PTX .cta/.gpu/
 * .sys). Ordered: a wider scope subsumes a narrower one.
 */
enum class MemScope : uint8_t {
    Cta = 0, ///< threads of the same block
    Gpu = 1, ///< all threads of the grid
    Sys = 2, ///< whole system (== Gpu in this single-device model)
};

const char* memScopeName(MemScope scope);

/** Memory ordering of an atomic or fence (C++/PTX semantics subset). */
enum class MemOrder : uint8_t {
    Relaxed = 0, ///< atomicity only, no ordering
    Acquire = 1, ///< later accesses may not move before this one
    Release = 2, ///< earlier accesses may not move after this one
    AcqRel = 3,  ///< both
};

const char* memOrderName(MemOrder order);

/** True when @p order has the acquire (release) component. */
inline bool
hasAcquire(MemOrder order)
{
    return order == MemOrder::Acquire || order == MemOrder::AcqRel;
}
inline bool
hasRelease(MemOrder order)
{
    return order == MemOrder::Release || order == MemOrder::AcqRel;
}

/**
 * Read-modify-write operation of an ATOM/CAS instruction. Ld/St are the
 * ISA-level encodings of atomic loads and stores (an atomic unit op and
 * an unconditional exchange without result); the IR keeps them as
 * distinct AtomicLoad/AtomicStore operations.
 */
enum class AtomicOp : uint8_t {
    Add = 0,
    Exch = 1,
    Min = 2, ///< unsigned
    Max = 3, ///< unsigned
    And = 4,
    Or = 5,
    Xor = 6,
    Cas = 7, ///< compare-and-swap (CASG/CASS only)
    Ld = 8,  ///< atomic load (no value operand)
    St = 9,  ///< atomic store (no result)
};

const char* atomicOpName(AtomicOp op);

/** Truncate @p v to a memory access width of @p width bytes. */
inline uint64_t
maskToWidth(uint64_t v, unsigned width)
{
    return width >= 8 ? v : (v & ((uint64_t(1) << (width * 8)) - 1));
}

/**
 * The RMW data function shared by the engine and the model checker:
 * old (op) operand at @p width. Min/Max compare unsigned over the
 * stored width. Returns the new memory value; Ld returns old (no
 * write), St returns the operand.
 */
inline uint64_t
applyAtomicRmw(AtomicOp aop, uint64_t old, uint64_t operand,
               unsigned width)
{
    const uint64_t a = maskToWidth(old, width);
    const uint64_t b = maskToWidth(operand, width);
    switch (aop) {
      case AtomicOp::Add:  return maskToWidth(a + b, width);
      case AtomicOp::Exch: return b;
      case AtomicOp::Min:  return a < b ? a : b;
      case AtomicOp::Max:  return a > b ? a : b;
      case AtomicOp::And:  return a & b;
      case AtomicOp::Or:   return a | b;
      case AtomicOp::Xor:  return a ^ b;
      case AtomicOp::St:   return b;
      case AtomicOp::Ld:   return a;
      case AtomicOp::Cas:  break; // handled by the CAS paths
    }
    return a;
}

/** Opcodes. Integer ALU ops host the OCU; FP units never see pointers. */
enum class Opcode : uint8_t {
    // Integer ALU
    IADD,   ///< dst = src0 + src1
    IADD3,  ///< dst = src0 + src1 + src2
    ISUB,   ///< dst = src0 - src1
    IMUL,   ///< dst = src0 * src1
    IMAD,   ///< dst = src0 * src1 + src2
    IMNMX,  ///< dst = min(src0, src1)
    SHL,    ///< dst = src0 << src1
    SHR,    ///< dst = src0 >> src1 (logical)
    LOP_AND,///< dst = src0 & src1
    LOP_OR, ///< dst = src0 | src1
    LOP_XOR,///< dst = src0 ^ src1
    MOV,    ///< dst = src0 (register, immediate, or constant bank)
    ISETP,  ///< pred dst = src0 <cmp> src1
    // Floating point (bit patterns interpreted as doubles)
    FADD, FMUL, FFMA,
    MUFU,   ///< special-function unit op (rcp/sqrt...), timing-relevant
    // Memory
    LDG, STG, LDS, STS, LDL, STL, LDC,
    // Scoped atomics (aop/scope/order fields select the operation):
    // ATOM* covers RMW plus the Ld/St encodings of atomic load/store.
    ATOMG,  ///< global-memory atomic: dst = old, [src0] op= src1
    ATOMS,  ///< shared-memory atomic
    CASG,   ///< global CAS: dst = old, [src0] = src2 if old == src1
    CASS,   ///< shared CAS
    MEMBAR, ///< memory fence at `scope` with `order`
    // Control
    BRA,    ///< branch to imm target if guard predicate holds
    BAR,    ///< block-wide barrier
    EXIT,   ///< thread terminates
    RET,    ///< return from (inlined) call frame; triggers UAS nullify
    TRAP,   ///< raise a fault (src[0] imm = FaultKind); SASS BPT.TRAP
    // Special
    S2R,    ///< dst = special register (tid/ctaid/...)
    MALLOC, ///< dst = device-heap allocation of src0 bytes
    FREE,   ///< release device-heap buffer src0
    NOP,
};

const char* opcodeName(Opcode op);

/** True for opcodes executed on the integer ALU (OCU-capable). */
bool isIntAlu(Opcode op);
/** True for opcodes executed on the FP pipeline. */
bool isFpAlu(Opcode op);
/** True for memory loads/stores (LDC excluded: constant bank);
 *  includes the atomic memory opcodes (MEMBAR excluded: no access). */
bool isMemory(Opcode op);
/** True for the atomic memory opcodes (ATOMG/ATOMS/CASG/CASS). */
bool isAtomic(Opcode op);
/** True for opcodes carrying aop/scope/order microcode fields
 *  (the atomics plus MEMBAR). */
bool isAtomicFamily(Opcode op);
/** True for loads (LDG/LDS/LDL/LDC). */
bool isLoad(Opcode op);
/** True for stores. */
bool isStore(Opcode op);
/** Memory space accessed by a memory opcode. */
MemSpace memSpaceOf(Opcode op);

/** Comparison condition for ISETP. */
enum class CmpOp : uint8_t { EQ, NE, LT, LE, GT, GE };

const char* cmpOpName(CmpOp op);

/** Special registers readable via S2R. */
enum class SpecialReg : uint8_t {
    TidX, TidY,     ///< thread index within the block
    CtaIdX, CtaIdY, ///< block index within the grid
    NTidX, NTidY,   ///< block dimensions
    NCtaIdX,        ///< grid dimension (x)
    LaneId,         ///< lane within the warp
    WarpId,         ///< warp within the block
    SmId,           ///< SM executing the thread
    GlobalTid,      ///< flattened global thread id
};

const char* specialRegName(SpecialReg reg);

/** One instruction operand. */
struct Operand
{
    enum class Kind : uint8_t {
        None,
        Reg,      ///< general register, 64-bit logical
        Imm,      ///< 64-bit immediate
        CBank,    ///< constant bank 0 at byte offset `value`
        Special,  ///< special register (S2R only)
    };

    Kind kind = Kind::None;
    uint64_t value = 0; ///< register index / immediate / c-bank offset

    static Operand none() { return {}; }
    static Operand reg(unsigned r) { return {Kind::Reg, r}; }
    static Operand imm(uint64_t v) { return {Kind::Imm, v}; }
    static Operand cbank(uint64_t byte_off) { return {Kind::CBank, byte_off}; }
    static Operand special(SpecialReg sr)
    {
        return {Kind::Special, uint64_t(sr)};
    }

    bool isReg() const { return kind == Kind::Reg; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isNone() const { return kind == Kind::None; }
};

/** Maximum number of source operands. */
inline constexpr unsigned kMaxSrcs = 3;
/** Guard predicate value meaning "always execute". */
inline constexpr int kNoPred = -1;
/** Number of predicate registers per thread. */
inline constexpr unsigned kNumPredRegs = 8;
/** Number of general registers per thread. */
inline constexpr unsigned kNumRegs = 256;

/**
 * One SASS-like instruction.
 *
 * Memory instructions compute their address as `src[0] + imm_offset`
 * where src[0] is the address register. The LMI hint bits live in
 * `hints` and are populated by the compiler's LMI pass.
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    int dst = -1;                 ///< destination register (or pred for ISETP)
    Operand src[kMaxSrcs];
    int guard_pred = kNoPred;     ///< execute only if predicate holds
    bool guard_neg = false;       ///< negate the guard
    CmpOp cmp = CmpOp::EQ;        ///< ISETP condition
    int64_t imm_offset = 0;       ///< memory address offset
    uint8_t width = 4;            ///< memory access width in bytes
    int branch_target = -1;       ///< BRA: absolute instruction index
    OcuHints hints;               ///< LMI A/S hint bits (microcode [28:27])
    /** Atomic family only (ATOM/CAS/MEMBAR): the RMW operation, the
     *  synchronization scope and the memory ordering. */
    AtomicOp aop = AtomicOp::Add;
    MemScope scope = MemScope::Cta;
    MemOrder order = MemOrder::Relaxed;

    /** Render a human-readable disassembly line. */
    std::string toString() const;
};

/** Driver-visible placement of one static buffer (stack or shared). */
struct BufferSlot
{
    uint64_t offset = 0;    ///< byte offset within the frame / shared region
    uint64_t requested = 0; ///< bytes the kernel declared
    uint64_t reserved = 0;  ///< bytes the layout policy reserved
    uint64_t tag = 0;       ///< pointer-tagging id (cuCatch-style), 0 = none
};

/**
 * A compiled kernel: straight-line instruction storage with absolute
 * branch targets, plus the launch-time metadata the driver needs.
 */
struct Program
{
    std::string name;
    std::vector<Instruction> code;
    /** Stack-frame buffer map (offsets relative to the frame base). */
    std::vector<BufferSlot> frame_slots;
    /** Static shared-memory buffer map. */
    std::vector<BufferSlot> shared_slots;
    /** Bytes of per-thread local (stack) memory the kernel uses. */
    uint64_t frame_bytes = 0;
    /** Bytes of statically declared shared memory per block. */
    uint64_t static_shared_bytes = 0;
    /** Number of kernel parameters (8 bytes each, in constant bank 0). */
    unsigned num_params = 0;
    /** Byte offset of the first parameter in constant bank 0. */
    static constexpr uint64_t kParamBase = 0x160;
    /** Byte offset of the stack-pointer word in constant bank 0 (Fig. 7). */
    static constexpr uint64_t kStackPtrOffset = 0x28;
    /** Byte offset of the driver-prepared dynamic-shared base pointer. */
    static constexpr uint64_t kDynSharedOffset = 0x30;

    /** Full disassembly (one line per instruction). */
    std::string disassemble() const;

    /** Basic structural validation; throws FatalError on malformed code. */
    void validate() const;
};

} // namespace lmi

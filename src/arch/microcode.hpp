/**
 * @file
 * 128-bit instruction microcode codec (paper §VI-B, Fig. 9).
 *
 * NVIDIA GPUs since Volta use a 128-bit instruction word whose reserved
 * field (between the control information and the instruction encoding)
 * leaves 13-14 unused bits; LMI repurposes two of them:
 *
 *   bit [28] — Activation (A): this instruction manipulates a pointer and
 *              the OCU must check it;
 *   bit [27] — Selection (S): which source operand holds the pointer;
 *   bit [26] — Elision (E): the compiler proved the operation in-bounds,
 *              so the OCU skips (power-gates) the dynamic check. The
 *              static-analysis extension claims a third reserved bit.
 *
 * This codec packs the in-memory Instruction representation into a
 * concrete 128-bit layout that honors those bit positions exactly, so the
 * decoder-side hint extraction in the simulator reads real bits rather
 * than side-band metadata.
 *
 * Layout, low word (bits 63..0):
 *
 *   [11:0]   opcode
 *   [20:12]  dst register + 1 (0 = no destination)
 *   [24:21]  guard predicate + 1 (0 = always execute)
 *   [25]     guard negate
 *   [26]     E hint  <- static-analysis extension
 *   [27]     S hint  <- paper Fig. 9
 *   [28]     A hint  <- paper Fig. 9
 *   [31:29]  ISETP comparison op
 *   [35:32]  memory access width (bytes)
 *   [38:36]  src0 operand kind
 *   [41:39]  src1 operand kind
 *   [44:42]  src2 operand kind
 *   [52:45]  src0 small value (register index / special id; 0xFF = wide)
 *   [60:53]  src1 small value
 *   [63:61]  reserved (always 0)
 *
 * High word (bits 127..64):
 *
 *   [71:64]   src2 small value
 *   [95:72]   signed 24-bit memory immediate offset
 *   [127:96]  32-bit wide value (one immediate / c-bank offset / branch
 *             target per instruction)
 *
 * Atomic-family opcodes (ATOM*, CAS*, MEMBAR) need a place for their
 * aop/scope/order fields; they borrow the top byte of the immediate
 * offset, which shrinks to a signed 16-bit field for them:
 *
 *   [75:72]   atomic RMW operation (AtomicOp)
 *   [77:76]   synchronization scope (MemScope)
 *   [79:78]   memory ordering (MemOrder)
 *   [95:80]   signed 16-bit memory immediate offset
 *
 * Instructions whose immediates do not fit (e.g. a 64-bit literal) are
 * rejected by pack(); the code generator materializes such values through
 * MOV32I-style two-step sequences or the constant bank, as real SASS does.
 */

#pragma once

#include <cstdint>

#include "arch/isa.hpp"

namespace lmi {

/** Bit position of the Activation hint (paper Fig. 9). */
inline constexpr unsigned kHintBitA = 28;
/** Bit position of the Selection hint (paper Fig. 9). */
inline constexpr unsigned kHintBitS = 27;
/** Bit position of the Elision hint (static-analysis extension). */
inline constexpr unsigned kHintBitE = 26;

/** A packed 128-bit instruction word. */
struct Microcode
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool operator==(const Microcode&) const = default;

    /** Raw Activation bit, as the decoder would read it. */
    bool activationBit() const { return (lo >> kHintBitA) & 1; }
    /** Raw Selection bit. */
    bool selectionBit() const { return (lo >> kHintBitS) & 1; }
    /** Raw Elision bit. */
    bool elisionBit() const { return (lo >> kHintBitE) & 1; }
};

/**
 * Pack an instruction into its 128-bit microcode word.
 * Throws FatalError when a field does not fit the encoding.
 */
Microcode packMicrocode(const Instruction& inst);

/** Unpack a microcode word back into an Instruction. */
Instruction unpackMicrocode(const Microcode& mc);

/** True when @p inst is representable by this codec. */
bool isEncodable(const Instruction& inst);

/** Render the 128-bit word as binary with the A/S bits marked. */
std::string microcodeToString(const Microcode& mc);

} // namespace lmi

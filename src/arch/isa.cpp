#include "arch/isa.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace lmi {

const char*
memSpaceName(MemSpace space)
{
    switch (space) {
      case MemSpace::Global:   return "global";
      case MemSpace::Shared:   return "shared";
      case MemSpace::Local:    return "local";
      case MemSpace::Constant: return "constant";
    }
    return "unknown";
}

const char*
memScopeName(MemScope scope)
{
    switch (scope) {
      case MemScope::Cta: return "cta";
      case MemScope::Gpu: return "gpu";
      case MemScope::Sys: return "sys";
    }
    return "unknown";
}

const char*
memOrderName(MemOrder order)
{
    switch (order) {
      case MemOrder::Relaxed: return "relaxed";
      case MemOrder::Acquire: return "acquire";
      case MemOrder::Release: return "release";
      case MemOrder::AcqRel:  return "acqrel";
    }
    return "unknown";
}

const char*
atomicOpName(AtomicOp op)
{
    switch (op) {
      case AtomicOp::Add:  return "add";
      case AtomicOp::Exch: return "exch";
      case AtomicOp::Min:  return "min";
      case AtomicOp::Max:  return "max";
      case AtomicOp::And:  return "and";
      case AtomicOp::Or:   return "or";
      case AtomicOp::Xor:  return "xor";
      case AtomicOp::Cas:  return "cas";
      case AtomicOp::Ld:   return "ld";
      case AtomicOp::St:   return "st";
    }
    return "unknown";
}

const char*
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::IADD:    return "IADD";
      case Opcode::IADD3:   return "IADD3";
      case Opcode::ISUB:    return "ISUB";
      case Opcode::IMUL:    return "IMUL";
      case Opcode::IMAD:    return "IMAD";
      case Opcode::IMNMX:   return "IMNMX";
      case Opcode::SHL:     return "SHL";
      case Opcode::SHR:     return "SHR";
      case Opcode::LOP_AND: return "LOP.AND";
      case Opcode::LOP_OR:  return "LOP.OR";
      case Opcode::LOP_XOR: return "LOP.XOR";
      case Opcode::MOV:     return "MOV";
      case Opcode::ISETP:   return "ISETP";
      case Opcode::FADD:    return "FADD";
      case Opcode::FMUL:    return "FMUL";
      case Opcode::FFMA:    return "FFMA";
      case Opcode::MUFU:    return "MUFU";
      case Opcode::LDG:     return "LDG";
      case Opcode::STG:     return "STG";
      case Opcode::LDS:     return "LDS";
      case Opcode::STS:     return "STS";
      case Opcode::LDL:     return "LDL";
      case Opcode::STL:     return "STL";
      case Opcode::LDC:     return "LDC";
      case Opcode::ATOMG:   return "ATOMG";
      case Opcode::ATOMS:   return "ATOMS";
      case Opcode::CASG:    return "CASG";
      case Opcode::CASS:    return "CASS";
      case Opcode::MEMBAR:  return "MEMBAR";
      case Opcode::BRA:     return "BRA";
      case Opcode::BAR:     return "BAR.SYNC";
      case Opcode::EXIT:    return "EXIT";
      case Opcode::RET:     return "RET";
      case Opcode::TRAP:    return "BPT.TRAP";
      case Opcode::S2R:     return "S2R";
      case Opcode::MALLOC:  return "MALLOC";
      case Opcode::FREE:    return "FREE";
      case Opcode::NOP:     return "NOP";
    }
    return "???";
}

bool
isIntAlu(Opcode op)
{
    switch (op) {
      case Opcode::IADD:
      case Opcode::IADD3:
      case Opcode::ISUB:
      case Opcode::IMUL:
      case Opcode::IMAD:
      case Opcode::IMNMX:
      case Opcode::SHL:
      case Opcode::SHR:
      case Opcode::LOP_AND:
      case Opcode::LOP_OR:
      case Opcode::LOP_XOR:
      case Opcode::MOV:
      case Opcode::ISETP:
      case Opcode::S2R:
        return true;
      default:
        return false;
    }
}

bool
isFpAlu(Opcode op)
{
    switch (op) {
      case Opcode::FADD:
      case Opcode::FMUL:
      case Opcode::FFMA:
      case Opcode::MUFU:
        return true;
      default:
        return false;
    }
}

bool
isMemory(Opcode op)
{
    switch (op) {
      case Opcode::LDG:
      case Opcode::STG:
      case Opcode::LDS:
      case Opcode::STS:
      case Opcode::LDL:
      case Opcode::STL:
      case Opcode::ATOMG:
      case Opcode::ATOMS:
      case Opcode::CASG:
      case Opcode::CASS:
        return true;
      default:
        return false;
    }
}

bool
isAtomic(Opcode op)
{
    return op == Opcode::ATOMG || op == Opcode::ATOMS ||
           op == Opcode::CASG || op == Opcode::CASS;
}

bool
isAtomicFamily(Opcode op)
{
    return isAtomic(op) || op == Opcode::MEMBAR;
}

bool
isLoad(Opcode op)
{
    return op == Opcode::LDG || op == Opcode::LDS || op == Opcode::LDL ||
           op == Opcode::LDC;
}

bool
isStore(Opcode op)
{
    return op == Opcode::STG || op == Opcode::STS || op == Opcode::STL;
}

MemSpace
memSpaceOf(Opcode op)
{
    switch (op) {
      case Opcode::LDG:
      case Opcode::STG:
        return MemSpace::Global;
      case Opcode::ATOMG:
      case Opcode::CASG:
        return MemSpace::Global;
      case Opcode::LDS:
      case Opcode::STS:
      case Opcode::ATOMS:
      case Opcode::CASS:
        return MemSpace::Shared;
      case Opcode::LDL:
      case Opcode::STL:
        return MemSpace::Local;
      case Opcode::LDC:
        return MemSpace::Constant;
      default:
        lmi_panic("memSpaceOf(%s): not a memory opcode", opcodeName(op));
    }
}

const char*
cmpOpName(CmpOp op)
{
    switch (op) {
      case CmpOp::EQ: return "EQ";
      case CmpOp::NE: return "NE";
      case CmpOp::LT: return "LT";
      case CmpOp::LE: return "LE";
      case CmpOp::GT: return "GT";
      case CmpOp::GE: return "GE";
    }
    return "??";
}

const char*
specialRegName(SpecialReg reg)
{
    switch (reg) {
      case SpecialReg::TidX:      return "SR_TID.X";
      case SpecialReg::TidY:      return "SR_TID.Y";
      case SpecialReg::CtaIdX:    return "SR_CTAID.X";
      case SpecialReg::CtaIdY:    return "SR_CTAID.Y";
      case SpecialReg::NTidX:     return "SR_NTID.X";
      case SpecialReg::NTidY:     return "SR_NTID.Y";
      case SpecialReg::NCtaIdX:   return "SR_NCTAID.X";
      case SpecialReg::LaneId:    return "SR_LANEID";
      case SpecialReg::WarpId:    return "SR_WARPID";
      case SpecialReg::SmId:      return "SR_SMID";
      case SpecialReg::GlobalTid: return "SR_GTID";
    }
    return "SR_???";
}

namespace {

std::string
operandToString(const Operand& o)
{
    std::ostringstream s;
    switch (o.kind) {
      case Operand::Kind::None:
        s << "-";
        break;
      case Operand::Kind::Reg:
        s << "R" << o.value;
        break;
      case Operand::Kind::Imm:
        s << "0x" << std::hex << o.value;
        break;
      case Operand::Kind::CBank:
        s << "c[0x0][0x" << std::hex << o.value << "]";
        break;
      case Operand::Kind::Special:
        s << specialRegName(SpecialReg(o.value));
        break;
    }
    return s.str();
}

} // namespace

std::string
Instruction::toString() const
{
    std::ostringstream s;
    if (guard_pred != kNoPred)
        s << "@" << (guard_neg ? "!" : "") << "P" << guard_pred << " ";
    s << opcodeName(op);
    if (op == Opcode::ISETP)
        s << "." << cmpOpName(cmp);
    if (hints.active)
        s << " [A,S=" << hints.pointer_operand << "]";

    if (isAtomicFamily(op)) {
        // ATOMG.add.acqrel.gpu R4, [R2], R5 /*4B*/ ; MEMBAR.release.cta
        if (op == Opcode::ATOMG || op == Opcode::ATOMS)
            s << "." << atomicOpName(aop);
        s << "." << memOrderName(order) << "." << memScopeName(scope);
        if (op == Opcode::MEMBAR)
            return s.str();
        bool lead = true;
        if (dst >= 0) {
            s << " R" << dst;
            lead = false;
        }
        s << (lead ? " [" : ", [") << operandToString(src[0]);
        if (imm_offset != 0)
            s << (imm_offset > 0 ? " + " : " - ") << "0x" << std::hex
              << (imm_offset > 0 ? imm_offset : -imm_offset) << std::dec;
        s << "]";
        for (unsigned i = 1; i < kMaxSrcs; ++i)
            if (!src[i].isNone())
                s << ", " << operandToString(src[i]);
        s << " /*" << int(width) << "B*/";
        return s.str();
    }

    if (isMemory(op) || op == Opcode::LDC) {
        // LD/ST syntax: LDG R4, [R2 + 0x10]
        if (isLoad(op))
            s << " R" << dst << ", ";
        s << "[" << operandToString(src[0]);
        if (imm_offset != 0)
            s << (imm_offset > 0 ? " + " : " - ") << "0x" << std::hex
              << (imm_offset > 0 ? imm_offset : -imm_offset) << std::dec;
        s << "]";
        if (isStore(op))
            s << ", " << operandToString(src[1]);
        s << " /*" << int(width) << "B*/";
        return s.str();
    }

    if (op == Opcode::BRA) {
        s << " -> " << branch_target;
        return s.str();
    }

    bool first = true;
    if (dst >= 0) {
        s << (op == Opcode::ISETP ? " P" : " R") << dst;
        first = false;
    }
    for (const auto& o : src) {
        if (o.isNone())
            continue;
        s << (first ? " " : ", ") << operandToString(o);
        first = false;
    }
    return s.str();
}

std::string
Program::disassemble() const
{
    std::ostringstream s;
    s << "// kernel " << name << "  frame=" << frame_bytes
      << "B shared=" << static_shared_bytes << "B params=" << num_params
      << "\n";
    for (size_t i = 0; i < code.size(); ++i)
        s << "  /*" << i << "*/ " << code[i].toString() << " ;\n";
    return s.str();
}

void
Program::validate() const
{
    for (size_t i = 0; i < code.size(); ++i) {
        const Instruction& inst = code[i];
        if (inst.op == Opcode::BRA) {
            if (inst.branch_target < 0 ||
                size_t(inst.branch_target) >= code.size()) {
                lmi_fatal("%s[%zu]: branch target %d out of range",
                          name.c_str(), i, inst.branch_target);
            }
        }
        if (inst.dst >= int(kNumRegs))
            lmi_fatal("%s[%zu]: destination register R%d out of range",
                      name.c_str(), i, inst.dst);
        for (const auto& o : inst.src) {
            if (o.isReg() && o.value >= kNumRegs)
                lmi_fatal("%s[%zu]: source register R%llu out of range",
                          name.c_str(), i,
                          static_cast<unsigned long long>(o.value));
        }
        if (inst.hints.active && !isIntAlu(inst.op))
            lmi_fatal("%s[%zu]: hint bits on non-integer-ALU op %s",
                      name.c_str(), i, opcodeName(inst.op));
    }
    if (code.empty() || code.back().op != Opcode::EXIT)
        lmi_fatal("%s: kernel must end with EXIT", name.c_str());
}

} // namespace lmi

#include "arch/microcode.hpp"

#include <sstream>

#include "common/bitutil.hpp"
#include "common/logging.hpp"

namespace lmi {

namespace {

/** Marker in a small-value field: the operand's value is in the wide slot. */
constexpr uint64_t kWideMarker = 0xFF;

/** True when this operand's value fits the 8-bit small field directly. */
bool
usesSmallField(const Operand& o)
{
    switch (o.kind) {
      case Operand::Kind::None:
        return true; // encoded as value 0
      case Operand::Kind::Reg:
      case Operand::Kind::Special:
        return true;
      case Operand::Kind::Imm:
      case Operand::Kind::CBank:
        return false;
    }
    return false;
}

} // namespace

bool
isEncodable(const Instruction& inst)
{
    unsigned wide_users = 0;
    for (const auto& o : inst.src) {
        if (usesSmallField(o)) {
            if (o.value >= kWideMarker && !o.isNone())
                return false;
        } else {
            if (o.value > 0xFFFFFFFFull)
                return false;
            ++wide_users;
        }
    }
    if (inst.op == Opcode::BRA) {
        if (inst.branch_target > 0x7FFFFFFF)
            return false;
        ++wide_users;
    }
    if (wide_users > 1)
        return false;
    // Atomic-family words carry aop/scope/order in the top byte of the
    // offset field, leaving a signed 16-bit immediate offset.
    const int offset_bits = isAtomicFamily(inst.op) ? 15 : 23;
    if (inst.imm_offset < -(1 << offset_bits) ||
        inst.imm_offset >= (1 << offset_bits))
        return false;
    return true;
}

Microcode
packMicrocode(const Instruction& inst)
{
    if (!isEncodable(inst))
        lmi_fatal("instruction not encodable as 128-bit microcode: %s",
                  inst.toString().c_str());

    Microcode mc;
    mc.lo = insertBits(mc.lo, 11, 0, uint64_t(inst.op));
    mc.lo = insertBits(mc.lo, 20, 12, uint64_t(inst.dst + 1));
    mc.lo = insertBits(mc.lo, 24, 21, uint64_t(inst.guard_pred + 1));
    mc.lo = insertBits(mc.lo, 25, 25, inst.guard_neg ? 1 : 0);
    mc.lo = insertBits(mc.lo, kHintBitE, kHintBitE,
                       inst.hints.elide_check ? 1 : 0);
    mc.lo = insertBits(mc.lo, kHintBitS, kHintBitS,
                       inst.hints.pointer_operand & 1);
    mc.lo = insertBits(mc.lo, kHintBitA, kHintBitA, inst.hints.active ? 1 : 0);
    mc.lo = insertBits(mc.lo, 31, 29, uint64_t(inst.cmp));
    mc.lo = insertBits(mc.lo, 35, 32, inst.width);

    uint64_t wide_value = 0;
    if (inst.op == Opcode::BRA)
        wide_value = uint64_t(inst.branch_target);

    const unsigned kind_lo[kMaxSrcs] = {36, 39, 42};
    uint64_t small[kMaxSrcs] = {0, 0, 0};
    for (unsigned i = 0; i < kMaxSrcs; ++i) {
        const Operand& o = inst.src[i];
        mc.lo = insertBits(mc.lo, kind_lo[i] + 2, kind_lo[i],
                           uint64_t(o.kind));
        if (usesSmallField(o)) {
            small[i] = o.isNone() ? 0 : o.value;
        } else {
            small[i] = kWideMarker;
            wide_value = o.value;
        }
    }
    mc.lo = insertBits(mc.lo, 52, 45, small[0]);
    mc.lo = insertBits(mc.lo, 60, 53, small[1]);

    mc.hi = insertBits(mc.hi, 7, 0, small[2]);
    if (isAtomicFamily(inst.op)) {
        mc.hi = insertBits(mc.hi, 11, 8, uint64_t(inst.aop));
        mc.hi = insertBits(mc.hi, 13, 12, uint64_t(inst.scope));
        mc.hi = insertBits(mc.hi, 15, 14, uint64_t(inst.order));
        mc.hi = insertBits(mc.hi, 31, 16,
                           uint64_t(inst.imm_offset) & lowMask(16));
    } else {
        mc.hi = insertBits(mc.hi, 31, 8,
                           uint64_t(inst.imm_offset) & lowMask(24));
    }
    mc.hi = insertBits(mc.hi, 63, 32, wide_value);
    return mc;
}

Instruction
unpackMicrocode(const Microcode& mc)
{
    Instruction inst;
    inst.op = Opcode(bitsOf(mc.lo, 11, 0));
    inst.dst = int(bitsOf(mc.lo, 20, 12)) - 1;
    inst.guard_pred = int(bitsOf(mc.lo, 24, 21)) - 1;
    inst.guard_neg = bitsOf(mc.lo, 25, 25) != 0;
    inst.hints.pointer_operand = unsigned(bitsOf(mc.lo, kHintBitS, kHintBitS));
    inst.hints.active = bitsOf(mc.lo, kHintBitA, kHintBitA) != 0;
    inst.hints.elide_check = bitsOf(mc.lo, kHintBitE, kHintBitE) != 0;
    inst.cmp = CmpOp(bitsOf(mc.lo, 31, 29));
    inst.width = uint8_t(bitsOf(mc.lo, 35, 32));

    const uint64_t wide_value = bitsOf(mc.hi, 63, 32);
    if (isAtomicFamily(inst.op)) {
        inst.aop = AtomicOp(bitsOf(mc.hi, 11, 8));
        inst.scope = MemScope(bitsOf(mc.hi, 13, 12));
        inst.order = MemOrder(bitsOf(mc.hi, 15, 14));
        // Sign-extend the 16-bit offset.
        uint64_t off = bitsOf(mc.hi, 31, 16);
        if (off & (uint64_t(1) << 15))
            off |= ~lowMask(16);
        inst.imm_offset = int64_t(off);
    } else {
        // Sign-extend the 24-bit offset.
        uint64_t off = bitsOf(mc.hi, 31, 8);
        if (off & (uint64_t(1) << 23))
            off |= ~lowMask(24);
        inst.imm_offset = int64_t(off);
    }

    const unsigned kind_lo[kMaxSrcs] = {36, 39, 42};
    const uint64_t small[kMaxSrcs] = {
        bitsOf(mc.lo, 52, 45),
        bitsOf(mc.lo, 60, 53),
        bitsOf(mc.hi, 7, 0),
    };
    for (unsigned i = 0; i < kMaxSrcs; ++i) {
        Operand& o = inst.src[i];
        o.kind = Operand::Kind(bitsOf(mc.lo, kind_lo[i] + 2, kind_lo[i]));
        if (o.kind == Operand::Kind::None) {
            o.value = 0;
        } else if (small[i] == kWideMarker && !usesSmallField(o)) {
            o.value = wide_value;
        } else {
            o.value = small[i];
        }
    }

    if (inst.op == Opcode::BRA)
        inst.branch_target = int(wide_value);
    return inst;
}

std::string
microcodeToString(const Microcode& mc)
{
    std::ostringstream s;
    auto emit_word = [&](uint64_t w, int top, int bottom) {
        for (int b = top; b >= bottom; --b) {
            s << ((w >> b) & 1);
            if (b % 8 == 0 && b != bottom)
                s << '_';
        }
    };
    s << "[127:64] ";
    emit_word(mc.hi, 63, 0);
    s << "\n[63:0]   ";
    emit_word(mc.lo, 63, 0);
    s << "\n          A=" << mc.activationBit() << " (bit " << kHintBitA
      << "), S=" << mc.selectionBit() << " (bit " << kHintBitS
      << "), E=" << mc.elisionBit() << " (bit " << kHintBitE << ")";
    return s.str();
}

} // namespace lmi

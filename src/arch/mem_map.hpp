/**
 * @file
 * Simulated virtual-address map.
 *
 * The GPU exposes distinct memory spaces (paper §II-A); each gets its own
 * region of the 59-bit address space left below the extent field:
 *
 *  - global memory: one large region shared by all threads; the device
 *    heap (kernel malloc) is carved out of its top;
 *  - local memory: a per-thread window. As on real GPUs all threads use
 *    the *same* local virtual addresses and address translation maps them
 *    to distinct physical locations, the simulator translates
 *    (thread, local VA) -> physical;
 *  - shared memory: per-block scratchpad addressed from 0.
 */

#pragma once

#include <cstdint>

namespace lmi {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

/** Base virtual address of device global memory. */
inline constexpr uint64_t kGlobalBase = 0x1'0000'0000ull; // 4 GiB
/** Size of device global memory (Table IV: 8 GB HBM). */
inline constexpr uint64_t kGlobalSize = 8 * kGiB;

/** Device-heap (kernel malloc) region inside global memory. */
inline constexpr uint64_t kHeapBase = kGlobalBase + 6 * kGiB;
inline constexpr uint64_t kHeapSize = 2 * kGiB;

/** Per-thread local-memory (stack) virtual window, starting at this VA. */
inline constexpr uint64_t kLocalBase = 0x0010'0000ull;
/** Size of each thread's local window. */
inline constexpr uint64_t kLocalWindow = 512 * kKiB;

/** Shared-memory space: per-block, addressed from 0. */
inline constexpr uint64_t kSharedBase = 0x0;
/** Shared memory capacity per SM (Table IV pairs it with the 96KB L1). */
inline constexpr uint64_t kSharedCapacity = 96 * kKiB;

/** True iff @p addr (extent-stripped) lies in the global region. */
constexpr bool
inGlobalRegion(uint64_t addr)
{
    return addr >= kGlobalBase && addr < kGlobalBase + kGlobalSize;
}

/** True iff @p addr lies in the device-heap subregion. */
constexpr bool
inHeapRegion(uint64_t addr)
{
    return addr >= kHeapBase && addr < kHeapBase + kHeapSize;
}

/** True iff @p addr lies in a thread's local window. */
constexpr bool
inLocalRegion(uint64_t addr)
{
    return addr >= kLocalBase && addr < kLocalBase + kLocalWindow;
}

} // namespace lmi

/**
 * @file
 * Unit tests for the LMI pointer codec (paper §IV-A, §V-A).
 */

#include <gtest/gtest.h>

#include "core/pointer.hpp"

namespace lmi {
namespace {

TEST(PointerCodec, Constants)
{
    EXPECT_EQ(kExtentBits, 5u);
    EXPECT_EQ(kExtentShift, 59u);
    EXPECT_EQ(kMaxExtent, 31u);
    EXPECT_EQ(kAddressMask, (uint64_t(1) << 59) - 1);
}

TEST(PointerCodec, ExtentEncodingMatchesPaperEquation)
{
    // E = ceil(max(log2 K, log2 S)) - log2 K + 1 with K = 256.
    const PointerCodec c;
    EXPECT_EQ(c.extentForSize(1), 1u);     // below K clamps to K
    EXPECT_EQ(c.extentForSize(255), 1u);
    EXPECT_EQ(c.extentForSize(256), 1u);   // 2^8 -> 1
    EXPECT_EQ(c.extentForSize(257), 2u);   // rounds to 512
    EXPECT_EQ(c.extentForSize(512), 2u);
    EXPECT_EQ(c.extentForSize(1024), 3u);
    EXPECT_EQ(c.extentForSize(uint64_t(1) << 38), 31u); // 256 GiB -> 31
}

TEST(PointerCodec, OversizeIsInvalid)
{
    const PointerCodec c;
    EXPECT_EQ(c.extentForSize((uint64_t(1) << 38) + 1), 0u);
    EXPECT_EQ(c.extentForSize(0), 0u);
}

TEST(PointerCodec, SizeForExtentRoundTrip)
{
    const PointerCodec c;
    for (unsigned e = 1; e <= kMaxExtent; ++e) {
        const uint64_t size = c.sizeForExtent(e);
        EXPECT_EQ(c.extentForSize(size), e) << "extent " << e;
        // Any request in (size/2, size] maps to the same extent.
        if (size > c.minAllocSize()) {
            EXPECT_EQ(c.extentForSize(size / 2 + 1), e);
        }
    }
}

TEST(PointerCodec, PaperWorkedExample)
{
    // §IV-A1: pointer 0x12345678, 256 B buffer -> base 0x12345600.
    const PointerCodec c;
    const uint64_t p = c.encode(0x12345678, 256);
    EXPECT_EQ(PointerCodec::extentOf(p), 1u);
    EXPECT_EQ(c.baseOf(p), 0x12345600u);
    // Updating to 0x1234567F keeps the same base.
    const uint64_t q = c.encode(0x1234567F, 256);
    EXPECT_EQ(c.baseOf(q), 0x12345600u);
}

TEST(PointerCodec, EncodeDecodeFields)
{
    const PointerCodec c;
    const uint64_t addr = 0x1'2345'6000ull;
    const uint64_t p = c.encode(addr, 8192);
    EXPECT_TRUE(PointerCodec::isValid(p));
    EXPECT_EQ(PointerCodec::addressOf(p), addr);
    EXPECT_EQ(c.sizeOf(p), 8192u);
    EXPECT_EQ(PointerCodec::extentOf(p), c.extentForSize(8192));
}

TEST(PointerCodec, InvalidatePreservesAddress)
{
    const PointerCodec c;
    const uint64_t p = c.encode(0xABCD00, 1024);
    const uint64_t inv = PointerCodec::invalidate(p);
    EXPECT_FALSE(PointerCodec::isValid(inv));
    EXPECT_EQ(PointerCodec::addressOf(inv), PointerCodec::addressOf(p));
}

TEST(PointerCodec, ModifiableAndUnmodifiableMasks)
{
    const PointerCodec c;
    const unsigned e = c.extentForSize(4096); // 2^12 -> 12 modifiable bits
    EXPECT_EQ(c.modifiableBits(e), 12u);
    const uint64_t um = c.unmodifiableMask(e);
    EXPECT_EQ(um & 0xFFF, 0u);
    EXPECT_EQ(~um, lowMask(12));
}

TEST(PointerCodec, UmIdentifiesBuffer)
{
    const PointerCodec c;
    const uint64_t a = c.encode(0x10000, 256);
    const uint64_t b = c.encode(0x10100, 256);
    EXPECT_NE(c.umOf(a), c.umOf(b));
    // Interior pointers of the same buffer share the UM value.
    const uint64_t a2 = c.encode(0x100F8, 256);
    EXPECT_EQ(c.umOf(a), c.umOf(a2));
}

TEST(PointerCodec, BaseOfInteriorPointer)
{
    const PointerCodec c;
    const uint64_t p = c.encode(0x40000 + 1000, 4096);
    EXPECT_EQ(c.baseOf(p), 0x40000u);
}

TEST(PointerCodec, CustomMinimumAllocationK)
{
    // Ablation codec with K = 16.
    const PointerCodec c(4);
    EXPECT_EQ(c.minAllocSize(), 16u);
    EXPECT_EQ(c.extentForSize(16), 1u);
    EXPECT_EQ(c.extentForSize(17), 2u);
    EXPECT_EQ(c.maxAllocSize(), uint64_t(1) << 34);
}

TEST(PointerCodec, MaxAllocWithDefaultKIs256GiB)
{
    const PointerCodec c;
    EXPECT_EQ(c.maxAllocSize(), uint64_t(256) * 1024 * 1024 * 1024);
}

// Property sweep: encode/base/size invariants across all extents and
// many offsets.
class PointerProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PointerProperty, InteriorPointersKeepBaseAndSize)
{
    const PointerCodec c;
    const unsigned e = GetParam();
    const uint64_t size = c.sizeForExtent(e);
    if (size > (uint64_t(1) << 40))
        GTEST_SKIP() << "address space of test region too small";
    const uint64_t base = size * 3; // size-aligned by construction
    for (uint64_t frac : {uint64_t(0), size / 4, size / 2, size - 1}) {
        const uint64_t p = c.encode(base + frac, size);
        EXPECT_EQ(c.baseOf(p), base);
        EXPECT_EQ(c.sizeOf(p), size);
        EXPECT_EQ(c.umOf(p), base >> c.modifiableBits(e));
    }
}

INSTANTIATE_TEST_SUITE_P(AllExtents, PointerProperty,
                         ::testing::Range(1u, 32u));

} // namespace
} // namespace lmi

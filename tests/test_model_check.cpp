/**
 * @file
 * Bounded weak-memory model checker tests: hand-built event logs with
 * known reachable/forbidden outcome sets, temporal (use-after-free)
 * fault discovery across interleavings, the execution bound and the
 * event-count cap, watch-load overrides, and end-to-end verdicts for
 * the whole litmus workload family.
 */

#include <gtest/gtest.h>

#include "analysis/model_check.hpp"
#include "common/logging.hpp"
#include "workloads/litmus.hpp"

namespace lmi {
namespace {

using analysis::ModelCheckConfig;
using analysis::ModelCheckFault;
using analysis::ModelCheckReport;
using analysis::modelCheck;

/** One log event; sm mirrors the block like the single-thread engine. */
MemEvent
ev(MemEvent::Kind kind, uint32_t gtid, uint32_t block, uint64_t seq,
   uint64_t addr, uint64_t value = 0,
   MemOrder order = MemOrder::Relaxed, MemScope scope = MemScope::Gpu)
{
    MemEvent e;
    e.kind = kind;
    e.is_atomic = kind != MemEvent::Kind::Malloc &&
                  kind != MemEvent::Kind::Free &&
                  kind != MemEvent::Kind::Barrier;
    e.order = order;
    e.scope = scope;
    e.width = 4;
    e.sm = block;
    e.block = block;
    e.gtid = gtid;
    e.pc = seq * 4;
    e.seq = seq;
    e.addr = addr;
    e.value = value;
    return e;
}

constexpr uint64_t kX = 0x1000, kF = 0x1004;

/** Classic message passing: writer stores data then flag, reader loads
 *  flag then data. Order parameterized. */
std::vector<MemEvent>
mpLog(MemOrder store_flag, MemOrder load_flag)
{
    using K = MemEvent::Kind;
    return {
        ev(K::Store, 0, 0, 0, kX, 1),
        ev(K::Store, 0, 0, 1, kF, 1, store_flag),
        ev(K::Load, 1, 1, 0, kF, 0, load_flag),
        ev(K::Load, 1, 1, 1, kX, 0),
    };
}

TEST(ModelCheck, RelaxedMpReachesTheWeakOutcome)
{
    const ModelCheckReport r = modelCheck(mpLog(MemOrder::Relaxed,
                                                MemOrder::Relaxed));
    EXPECT_EQ(r.agents, 2u);
    EXPECT_EQ(r.events, 4u);
    EXPECT_FALSE(r.hit_bound);
    // Watch tuple = reader's (flag, data). All four combinations are
    // reachable under relaxed ordering, including the weak (1, 0).
    EXPECT_TRUE(r.sawOutcome({1, 0}));
    EXPECT_TRUE(r.sawOutcome({0, 0}));
    EXPECT_TRUE(r.sawOutcome({1, 1}));
    EXPECT_EQ(r.outcomes.size(), 4u);
    EXPECT_TRUE(r.faults.empty());
    EXPECT_TRUE(r.races.empty());
}

TEST(ModelCheck, ReleaseAcquireMpForbidsStaleData)
{
    const ModelCheckReport r = modelCheck(mpLog(MemOrder::Release,
                                                MemOrder::Acquire));
    EXPECT_FALSE(r.sawOutcome({1, 0}))
        << "flag=1 must publish data=1 under release/acquire";
    EXPECT_TRUE(r.sawOutcome({1, 1}));
    EXPECT_TRUE(r.sawOutcome({0, 0}));
}

TEST(ModelCheck, ExecutionBoundIsHonoured)
{
    ModelCheckConfig cfg;
    cfg.max_executions = 1;
    const ModelCheckReport r =
        modelCheck(mpLog(MemOrder::Relaxed, MemOrder::Relaxed), cfg);
    EXPECT_EQ(r.executions, 1u);
    EXPECT_TRUE(r.hit_bound);
    EXPECT_EQ(r.outcomes.size(), 1u);
}

TEST(ModelCheck, WatchOverrideSelectsEvents)
{
    ModelCheckConfig cfg;
    cfg.watch = {3}; // only the reader's data load
    const ModelCheckReport r =
        modelCheck(mpLog(MemOrder::Relaxed, MemOrder::Relaxed), cfg);
    for (const auto& tuple : r.outcomes)
        EXPECT_EQ(tuple.size(), 1u);
    EXPECT_TRUE(r.sawOutcome({0}));
    EXPECT_TRUE(r.sawOutcome({1}));
}

TEST(ModelCheck, FindsUseAfterFreeInSomeInterleaving)
{
    using K = MemEvent::Kind;
    // Owner allocates then frees; a sibling thread stores into the
    // allocation with no ordering against the free.
    const std::vector<MemEvent> log = {
        ev(K::Malloc, 0, 0, 0, 0x2000, 64),
        ev(K::Free, 0, 0, 1, 0x2000),
        ev(K::Store, 1, 0, 0, 0x2010, 7),
    };
    const ModelCheckReport r = modelCheck(log);
    ASSERT_FALSE(r.faults.empty());
    EXPECT_EQ(r.faults[0].kind,
              ModelCheckFault::Kind::UseAfterFreeStore);
    EXPECT_EQ(r.faults[0].addr, 0x2010u);
    EXPECT_EQ(r.faults[0].gtid, 1u);
}

TEST(ModelCheck, BarrierOrderingSuppressesUseAfterFree)
{
    using K = MemEvent::Kind;
    // Same shape, but a CTA barrier separates the store from the free:
    // every interleaving runs the store before the free.
    const std::vector<MemEvent> log = {
        ev(K::Malloc, 0, 0, 0, 0x2000, 64),
        ev(K::Barrier, 0, 0, 1, 0, 0, MemOrder::AcqRel, MemScope::Cta),
        ev(K::Free, 0, 0, 2, 0x2000),
        ev(K::Store, 1, 0, 0, 0x2010, 7),
        ev(K::Barrier, 1, 0, 1, 0, 0, MemOrder::AcqRel, MemScope::Cta),
    };
    const ModelCheckReport r = modelCheck(log);
    EXPECT_TRUE(r.faults.empty());
}

TEST(ModelCheck, RejectsOversizedLogs)
{
    std::vector<MemEvent> log;
    for (size_t i = 0; i < analysis::kMaxModelEvents + 1; ++i)
        log.push_back(ev(MemEvent::Kind::Load, 0, 0, i, kX));
    const ModelCheckReport r = modelCheck(log);
    EXPECT_EQ(r.executions, 0u);
}

TEST(ModelCheck, ScopeMismatchRaceIsReported)
{
    using K = MemEvent::Kind;
    // Cross-block handshake at cta scope: the release/acquire pair is
    // too narrow to synchronize, so the data accesses race.
    const std::vector<MemEvent> log = {
        ev(K::Store, 0, 0, 0, kX, 1),
        ev(K::Store, 0, 0, 1, kF, 1, MemOrder::Release, MemScope::Cta),
        ev(K::Load, 1, 1, 0, kF, 0, MemOrder::Acquire, MemScope::Cta),
        ev(K::Load, 1, 1, 1, kX, 0),
    };
    const ModelCheckReport r = modelCheck(log);
    // The race lands on the flag cell: its release/acquire pair is
    // atomic on both sides but too narrow for the cross-block
    // distance. (The data cell's relaxed device-scope atomics conflict
    // at sufficient scope, which is not a data race.)
    ASSERT_FALSE(r.races.empty());
    bool on_flag = false;
    for (const auto& race : r.races)
        on_flag |= race.addr == kF && race.scope_mismatch;
    EXPECT_TRUE(on_flag);
}

TEST(ModelCheck, ProperlyScopedHandshakeHasNoRace)
{
    const ModelCheckReport r = modelCheck(mpLog(MemOrder::Release,
                                                MemOrder::Acquire));
    EXPECT_TRUE(r.races.empty());
}

// ---------------------------------------------------------------------
// End-to-end litmus family.
// ---------------------------------------------------------------------

TEST(Litmus, SuiteHasTheDocumentedShape)
{
    const auto& suite = litmusSuite();
    ASSERT_EQ(suite.size(), 9u);
    EXPECT_NO_THROW(findLitmus("mp_release_gpu"));
    EXPECT_THROW(findLitmus("nope"), FatalError);
}

TEST(Litmus, EveryTestMatchesItsExpectations)
{
    for (const LitmusTest& test : litmusSuite()) {
        SCOPED_TRACE(test.name);
        const LitmusResult r = runLitmus(test);
        EXPECT_TRUE(r.pass) << r.verdict;
        EXPECT_FALSE(r.sim_outcome_forbidden)
            << "engine produced a forbidden outcome";
        EXPECT_EQ(r.uaf_found, test.expect_uaf);
        EXPECT_EQ(r.race_found, test.expect_race);
    }
}

TEST(Litmus, ForbiddenOutcomesAreAbsentAndWeakOnesFound)
{
    const LitmusResult strong = runLitmus(findLitmus("mp_release_gpu"));
    EXPECT_FALSE(strong.forbidden_reached);
    EXPECT_EQ(strong.verdict, "forbidden-absent");

    const LitmusResult weak = runLitmus(findLitmus("mp_relaxed"));
    EXPECT_TRUE(weak.weak_found);
    EXPECT_EQ(weak.verdict, "weak-found");
    EXPECT_TRUE(weak.report.sawOutcome({1, 0}));
}

} // namespace
} // namespace lmi

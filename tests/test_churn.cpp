/**
 * @file
 * Allocation-churn tests: the message-passing allocator under
 * adversarial alloc/free traffic, and the kernel-level churn pair
 * whose frees cross SMs through the remote-free queues.
 */

#include <gtest/gtest.h>

#include "alloc/device_heap.hpp"
#include "alloc/global_allocator.hpp"
#include "ir/builder.hpp"
#include "sim/device.hpp"
#include "workloads/churn.hpp"

namespace lmi {
namespace {

using namespace ir;

/** Fill + drain table geometry shared by the kernel-level tests. */
constexpr unsigned kRounds = 4;
constexpr unsigned kBlocks = 4; ///< must be even (XOR pairing)
constexpr unsigned kThreads = 32;
constexpr unsigned kSlots = kBlocks * kThreads * kRounds;

TEST(Churn, BasketRunsAreDeterministic)
{
    for (const ChurnSpec& spec : churnBasket()) {
        const ChurnSpec s = scaleChurnSpec(spec, 0.05);
        const ChurnResult a = runChurn(s);
        const ChurnResult b = runChurn(s);
        EXPECT_EQ(a.digest, b.digest) << s.name;
        EXPECT_EQ(a.allocs, b.allocs) << s.name;
        EXPECT_EQ(a.remote_drained, b.remote_drained) << s.name;
        EXPECT_EQ(a.footprint, b.footprint) << s.name;
        EXPECT_EQ(a.unexpected_faults, 0u) << s.name;
        EXPECT_EQ(a.oom, 0u) << s.name;
    }
}

TEST(Churn, CrossSmSpecExercisesRemoteQueues)
{
    const ChurnSpec s =
        scaleChurnSpec(findChurnSpec("heap_cross_sm_pow2"), 0.1);
    const ChurnResult r = runChurn(s);
    // Half the frees are issued by a random context; with 16 contexts
    // nearly all of those are foreign and must ride the MPSC queues.
    EXPECT_GT(r.remote_posted, r.frees / 4);
    EXPECT_EQ(r.remote_drained, r.remote_posted); // final drain flushes
    EXPECT_GT(r.remote_batches, 0u);
}

TEST(Churn, StaleFreeClassificationUnderChurn)
{
    // The temporal spec replays retired handles; every replay must be
    // caught (DoubleFree/InvalidFree) or land on a re-carved extent —
    // never fault a live free. The caught count is part of the
    // deterministic contract.
    const ChurnSpec s = scaleChurnSpec(findChurnSpec("heap_temporal"), 0.2);
    const ChurnResult a = runChurn(s);
    const ChurnResult b = runChurn(s);
    EXPECT_GT(a.stale_faults, 0u);
    EXPECT_EQ(a.stale_faults, b.stale_faults);
    EXPECT_EQ(a.unexpected_faults, 0u);
}

TEST(Churn, ExhaustionRecoversThroughRemoteDrain)
{
    // Region sized for exactly two slabs of the 4 KiB class. Context 1
    // frees blocks it does not own; the frees park in ctx 0's inbox.
    // The alloc slow path must drain the queues and retry before
    // reporting exhaustion.
    GlobalAllocator::Config cfg;
    cfg.region_base = 0x10000000;
    cfg.region_size = 128 * 1024;
    cfg.contexts = 2;
    GlobalAllocator a(cfg, nullptr);
    std::vector<uint64_t> ptrs;
    for (;;) {
        const uint64_t p = a.allocFrom(0, 4096);
        if (!p)
            break;
        ptrs.push_back(p);
    }
    ASSERT_EQ(ptrs.size(), 32u); // 128 KiB / 4 KiB
    for (uint64_t p : ptrs)
        ASSERT_FALSE(a.freeFrom(1, p).has_value());
    EXPECT_GT(a.core().remotePending(), 0u);
    // No explicit drainRemote: the alloc path must recover on its own.
    const uint64_t p = a.allocFrom(0, 4096);
    EXPECT_NE(p, 0u);
    EXPECT_EQ(a.core().remotePending(), 0u);
}

TEST(Churn, DoubleFreeStaysClassifiedAfterReuse)
{
    DeviceHeapAllocator heap;
    const uint64_t p = heap.malloc(0, 0, 64);
    ASSERT_FALSE(heap.free(0, 0, p).has_value());
    // Re-carve the same chunk, then replay the stale free twice: the
    // first lands on the reallocated (live) extent and succeeds — the
    // UAF-realloc hazard — and the second is a DoubleFree again.
    const uint64_t q = heap.malloc(0, 0, 64);
    ASSERT_EQ(q, p);
    ASSERT_FALSE(heap.free(0, 0, p).has_value());
    const MaybeFault dbl = heap.free(0, 0, p);
    ASSERT_TRUE(dbl.has_value());
    EXPECT_EQ(dbl->kind, FaultKind::DoubleFree);
}

/** Compile the churn fill/drain pair against @p dev. */
struct ChurnKernels
{
    CompiledKernel fill;
    CompiledKernel drain;
};

ChurnKernels
compileChurn(Device& dev)
{
    return {dev.compile(buildChurnFillKernel(kRounds), "churn_fill"),
            dev.compile(buildChurnDrainKernel(kRounds, kThreads),
                        "churn_drain")};
}

TEST(Churn, CrossSmRemoteFreeAfterOwningBlockExits)
{
    Device dev;
    const uint64_t table = dev.cudaMalloc(kSlots * 8);
    ASSERT_NE(table, 0u);
    const ChurnKernels k = compileChurn(dev);

    // Launch 1: every thread allocates kRounds blocks, frees the odd
    // rounds locally, and publishes the even-round pointers.
    const RunResult fill = dev.launch(k.fill, kBlocks, kThreads, {table});
    ASSERT_FALSE(fill.faulted());
    EXPECT_GT(dev.heapAllocator().liveReservedBytes(), 0u);

    // Launch 2: the owning blocks are long gone; neighbour blocks (on
    // other SMs) free the published pointers. Every free is foreign, so
    // the chunks travel home through the remote queues.
    const RunResult drain = dev.launch(k.drain, kBlocks, kThreads, {table});
    ASSERT_FALSE(drain.faulted());
    EXPECT_EQ(dev.heapAllocator().liveReservedBytes(), 0u);
    const MessageHeap::RemoteStats& rs =
        dev.heapAllocator().core().remoteStats();
    EXPECT_GT(rs.posted, 0u);
    EXPECT_EQ(rs.drained, rs.posted);
}

TEST(Churn, KernelChurnByteIdenticalAcrossSimThreads)
{
    struct Snapshot
    {
        std::vector<uint64_t> table;
        uint64_t live = 0, footprint = 0, groups = 0;
        uint64_t posted = 0, drained = 0;
        uint64_t mallocs = 0, frees = 0;
    };
    auto run = [&](unsigned threads) {
        Device dev;
        dev.setSimThreads(threads);
        const uint64_t table = dev.cudaMalloc(kSlots * 8);
        const ChurnKernels k = compileChurn(dev);
        const RunResult fill =
            dev.launch(k.fill, kBlocks, kThreads, {table});
        EXPECT_FALSE(fill.faulted());
        Snapshot s;
        for (unsigned i = 0; i < kSlots; ++i)
            s.table.push_back(dev.peek64(table + 8ull * i));
        const RunResult drain =
            dev.launch(k.drain, kBlocks, kThreads, {table});
        EXPECT_FALSE(drain.faulted());
        const MessageHeap& core = dev.heapAllocator().core();
        s.live = core.liveReservedBytes();
        s.footprint = core.footprintBytes();
        s.groups = core.groupCount();
        s.posted = core.remoteStats().posted;
        s.drained = core.remoteStats().drained;
        s.mallocs = dev.stats().counter("alloc.heap.mallocs");
        s.frees = dev.stats().counter("alloc.heap.frees");
        return s;
    };
    const Snapshot one = run(1);
    for (unsigned threads : {2u, 4u}) {
        const Snapshot s = run(threads);
        EXPECT_EQ(s.table, one.table) << threads << " sim threads";
        EXPECT_EQ(s.live, one.live);
        EXPECT_EQ(s.footprint, one.footprint);
        EXPECT_EQ(s.groups, one.groups);
        EXPECT_EQ(s.posted, one.posted);
        EXPECT_EQ(s.drained, one.drained);
        EXPECT_EQ(s.mallocs, one.mallocs);
        EXPECT_EQ(s.frees, one.frees);
    }
    EXPECT_EQ(one.live, 0u);
    EXPECT_GT(one.posted, 0u);
}

TEST(Churn, GroupAccountingAcrossFreeReallocInOneKernel)
{
    // Satellite: Fig. 5 group accounting when one kernel frees a chunk
    // and re-mallocs it. The group must be reused (no new group, no
    // footprint growth) and the stale extent re-minted, not leaked.
    IrFunction f =
        IrBuilder::makeKernel("frr", {{"out", Type::ptr(8)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto out = b.param(0);
    auto p = b.malloc_(b.constInt(64), 4);
    b.store(b.gep(p, b.constInt(0)), b.constInt(7, Type::i32()));
    b.free_(p);
    auto q = b.malloc_(b.constInt(64), 4);
    b.store(b.gep(q, b.constInt(0)), b.constInt(9, Type::i32()));
    b.free_(q);
    b.store(b.gep(out, b.constInt(0)), b.ptrToInt(p));
    b.store(b.gep(out, b.constInt(1)), b.ptrToInt(q));
    b.ret();
    IrModule m;
    m.functions.push_back(std::move(f));

    Device dev;
    const uint64_t out_buf = dev.cudaMalloc(16);
    const CompiledKernel k = dev.compile(m, "frr");
    const RunResult r = dev.launch(k, 1, 1, {out_buf});
    ASSERT_FALSE(r.faulted());

    const uint64_t pa = dev.peek64(out_buf);
    const uint64_t qa = dev.peek64(out_buf + 8);
    EXPECT_EQ(pa, qa); // LIFO cache hands the same chunk back
    const DeviceHeapAllocator& heap = dev.heapAllocator();
    EXPECT_EQ(heap.core().groupCount(), 1u);
    EXPECT_EQ(heap.liveReservedBytes(), 0u);
    const MessageHeap::Extent* e = heap.core().extentAt(pa);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->epoch, 1u); // re-minted, not a fresh record
    EXPECT_FALSE(e->live);
    EXPECT_EQ(dev.stats().counter("alloc.heap.mallocs"), 2u);
    EXPECT_EQ(dev.stats().counter("alloc.heap.frees"), 2u);
    EXPECT_EQ(dev.stats().counter("alloc.heap.groups"), 1u);
}

} // namespace
} // namespace lmi

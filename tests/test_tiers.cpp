/**
 * @file
 * Two-tier engine cross-validation (DESIGN.md, "Two-tier execution
 * engine"):
 *
 *  - the functional tier must reproduce the detailed tier's
 *    architectural results — instruction counts, memory-region profile,
 *    faults, and mechanism detection counters — on the whole Table V
 *    suite and on the full Table III violation matrix;
 *  - functional and sampled runs must stay deterministic across
 *    sim_threads, like the detailed tier's byte-identity guarantee;
 *  - the sampled tier's cycle estimate must fall within the error
 *    bound DESIGN.md documents for the validation schedule;
 *  - the result-cache fingerprint must separate tiers (and sampling
 *    schedules within the sampled tier) so no cross-tier entry is ever
 *    served.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mechanisms/registry.hpp"
#include "runner/sweep.hpp"
#include "security/violations.hpp"
#include "workloads/workloads.hpp"

namespace lmi {
namespace {

RunResult
runTier(const WorkloadProfile& profile, MechanismKind mech, double scale,
        ExecutionTier tier, unsigned sim_threads = 0)
{
    Device dev(makeMechanism(mech));
    if (sim_threads)
        dev.setSimThreads(sim_threads);
    LaunchOptions opts;
    opts.tier = tier;
    return runWorkload(dev, profile, scale, RaceSeed::None, opts).result;
}

/** The architectural half of a RunResult — everything a tier promises
 *  to reproduce exactly. Timing fields (cycles, cache counters) are
 *  deliberately absent. */
void
expectArchitecturalMatch(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.thread_instructions, b.thread_instructions);
    EXPECT_EQ(a.ldg, b.ldg);
    EXPECT_EQ(a.stg, b.stg);
    EXPECT_EQ(a.lds, b.lds);
    EXPECT_EQ(a.sts, b.sts);
    EXPECT_EQ(a.ldl, b.ldl);
    EXPECT_EQ(a.stl, b.stl);
    ASSERT_EQ(a.faults.size(), b.faults.size());
    for (size_t i = 0; i < a.faults.size(); ++i) {
        EXPECT_EQ(a.faults[i].kind, b.faults[i].kind);
        EXPECT_EQ(a.faults[i].address, b.faults[i].address);
    }
}

TEST(TierCrossValidation, FunctionalMatchesDetailedOnWholeSuite)
{
    // Every Table V workload, under the paper's mechanism so the
    // per-access check path (OCU decode + bounds compare) is exercised,
    // not just the bare interpreter.
    for (const auto& profile : workloadSuite()) {
        SCOPED_TRACE(profile.name);
        Device det_dev(makeMechanism(MechanismKind::Lmi));
        Device fun_dev(makeMechanism(MechanismKind::Lmi));
        LaunchOptions fun;
        fun.tier = ExecutionTier::Functional;
        const RunResult det =
            runWorkload(det_dev, profile, 0.25).result;
        const RunResult fn =
            runWorkload(fun_dev, profile, 0.25, RaceSeed::None, fun)
                .result;
        expectArchitecturalMatch(det, fn);
        // Detection counters: same checks, same outcomes.
        EXPECT_EQ(det_dev.stats().counter("ocu.checks"),
                  fun_dev.stats().counter("ocu.checks"));
        EXPECT_EQ(det_dev.stats().counter("ocu.violations"),
                  fun_dev.stats().counter("ocu.violations"));
    }
}

TEST(TierCrossValidation, FunctionalMatchesDetailedDetectionMatrix)
{
    // The Table III violation suite must score identically per
    // category whichever tier executes it.
    for (const MechanismKind kind :
         {MechanismKind::Lmi, MechanismKind::BaggySw}) {
        SCOPED_TRACE(mechanismKindName(kind));
        const SecurityScore det = evaluateMechanism(kind);
        const SecurityScore fn =
            evaluateMechanism(kind, ExecutionTier::Functional);
        EXPECT_EQ(det.detected, fn.detected);
        EXPECT_EQ(det.total, fn.total);
    }
}

TEST(TierCrossValidation, SampledMatchesDetailedDetectionMatrix)
{
    const SecurityScore det = evaluateMechanism(MechanismKind::Lmi);
    const SecurityScore samp =
        evaluateMechanism(MechanismKind::Lmi, ExecutionTier::Sampled);
    EXPECT_EQ(det.detected, samp.detected);
    EXPECT_EQ(det.total, samp.total);
}

TEST(TierCrossValidation, FunctionalDeterministicAcrossSimThreads)
{
    const WorkloadProfile profile = findWorkload("hotspot");
    const RunResult serial = runTier(profile, MechanismKind::Lmi, 0.5,
                                     ExecutionTier::Functional, 1);
    for (const unsigned threads : {2u, 5u}) {
        SCOPED_TRACE(threads);
        const RunResult parallel =
            runTier(profile, MechanismKind::Lmi, 0.5,
                    ExecutionTier::Functional, threads);
        expectArchitecturalMatch(serial, parallel);
        EXPECT_EQ(serial.cycles, parallel.cycles);
    }
}

TEST(TierCrossValidation, SampledDeterministicAcrossSimThreads)
{
    const WorkloadProfile profile = findWorkload("bfs");
    const RunResult serial = runTier(profile, MechanismKind::Baseline,
                                     1.0, ExecutionTier::Sampled, 1);
    for (const unsigned threads : {2u, 5u}) {
        SCOPED_TRACE(threads);
        const RunResult parallel =
            runTier(profile, MechanismKind::Baseline, 1.0,
                    ExecutionTier::Sampled, threads);
        expectArchitecturalMatch(serial, parallel);
        EXPECT_EQ(serial.cycles, parallel.cycles);
    }
}

TEST(TierCrossValidation, SampledEstimateWithinDocumentedBound)
{
    // Spot checks of the ctest-sized kind: the full fig12-basket
    // cross-validation (per-mechanism relative slowdowns at the
    // validation scale) runs as the CI tier-drift gate; here two
    // representative cells assert the absolute-estimate bound DESIGN.md
    // documents for the default schedule at this size.
    for (const char* name : {"hotspot", "needle"}) {
        SCOPED_TRACE(name);
        const WorkloadProfile profile = findWorkload(name);
        const RunResult det = runTier(profile, MechanismKind::Lmi, 4.0,
                                      ExecutionTier::Detailed);
        const RunResult samp = runTier(profile, MechanismKind::Lmi, 4.0,
                                       ExecutionTier::Sampled);
        const double err =
            100.0 *
            std::abs(double(samp.cycles) - double(det.cycles)) /
            double(det.cycles);
        EXPECT_LE(err, 15.0) << "sampled " << samp.cycles
                             << " vs detailed " << det.cycles;
    }
}

TEST(TierCrossValidation, CacheFingerprintSeparatesTiers)
{
    SweepCell cell;
    cell.workload = findWorkload("bfs");
    cell.mechanism = MechanismKind::Lmi;
    cell.scale = 1.0;

    cell.tier = ExecutionTier::Detailed;
    const uint64_t detailed = cellFingerprint(cell);
    cell.tier = ExecutionTier::Functional;
    const uint64_t functional = cellFingerprint(cell);
    cell.tier = ExecutionTier::Sampled;
    const uint64_t sampled = cellFingerprint(cell);
    EXPECT_NE(detailed, functional);
    EXPECT_NE(detailed, sampled);
    EXPECT_NE(functional, sampled);

    // The schedule splits sampled entries...
    cell.sampling.period_slices += 16;
    EXPECT_NE(cellFingerprint(cell), sampled);
    // ...but never detailed ones (tweaking sampling params for a
    // detailed sweep must not orphan the cache).
    cell.tier = ExecutionTier::Detailed;
    EXPECT_EQ(cellFingerprint(cell), detailed);
}

} // namespace
} // namespace lmi

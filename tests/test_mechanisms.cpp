/**
 * @file
 * End-to-end protection-mechanism tests: violation kernels executed on
 * the simulator under each mechanism, asserting who detects what (the
 * behaviour behind Tables II/III) and that benign kernels stay clean.
 */

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "mechanisms/dbi.hpp"
#include "mechanisms/gpushield.hpp"
#include "mechanisms/lmi_mechanism.hpp"
#include "mechanisms/registry.hpp"
#include "mechanisms/software.hpp"
#include "sim/device.hpp"

namespace lmi {
namespace {

using namespace ir;

IrModule
module(IrFunction f)
{
    IrModule m;
    m.functions.push_back(std::move(f));
    return m;
}

/** Writes buf[idx] = 1 for a single thread; idx is a kernel parameter. */
IrModule
pokeKernel()
{
    IrFunction f = IrBuilder::makeKernel(
        "poke", {{"buf", Type::ptr(4)}, {"idx", Type::i64()}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto buf = b.param(0);
    auto idx = b.param(1);
    auto one = b.constInt(1, Type::i32());
    b.store(b.gep(buf, idx), one);
    b.ret();
    return module(std::move(f));
}

RunResult
runPoke(Device& dev, uint64_t buf, uint64_t idx)
{
    const CompiledKernel k = dev.compile(pokeKernel(), "poke");
    return dev.launch(k, 1, 1, {buf, idx});
}

TEST(MechLmi, InBoundsIsClean)
{
    Device dev(makeMechanism(MechanismKind::Lmi));
    const uint64_t buf = dev.cudaMalloc(64 * 4); // 256 B: exact extent
    const RunResult r = runPoke(dev, buf, 63);
    EXPECT_FALSE(r.faulted());
    EXPECT_EQ(dev.peek32(buf + 63 * 4), 1u);
}

TEST(MechLmi, AdjacentGlobalOverflowDetected)
{
    Device dev(makeMechanism(MechanismKind::Lmi));
    const uint64_t buf = dev.cudaMalloc(64 * 4);
    const RunResult r = runPoke(dev, buf, 64); // one past the end
    ASSERT_TRUE(r.faulted());
    EXPECT_TRUE(r.aborted);
    EXPECT_EQ(r.faults[0].kind, FaultKind::SpatialOverflow);
    // Delayed termination: the write must NOT have landed.
    EXPECT_EQ(dev.peek32(buf + 64 * 4), 0u);
}

TEST(MechLmi, NonAdjacentGlobalOverflowDetected)
{
    Device dev(makeMechanism(MechanismKind::Lmi));
    const uint64_t buf = dev.cudaMalloc(64 * 4);
    const RunResult r = runPoke(dev, buf, 4096);
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.faults[0].kind, FaultKind::SpatialOverflow);
}

TEST(MechLmi, UseAfterFreeDetected)
{
    Device dev(makeMechanism(MechanismKind::Lmi));
    uint64_t buf = dev.cudaMalloc(1024);
    const uint64_t stale = buf; // a copy made before the free
    ASSERT_FALSE(dev.cudaFree(buf).has_value());
    // After cudaFree the runtime cleared the handle's extent.
    EXPECT_FALSE(PointerCodec::isValid(buf));
    const RunResult r = runPoke(dev, buf, 0);
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.faults[0].kind, FaultKind::UseAfterFree);

    // The copied pointer still carries a valid extent: base LMI misses
    // it (Fig. 11's documented limitation).
    const RunResult r2 = runPoke(dev, stale, 0);
    EXPECT_FALSE(r2.faulted());
}

TEST(MechLmiLiveness, CopiedPointerUafCaught)
{
    Device dev(makeMechanism(MechanismKind::LmiLiveness));
    uint64_t buf = dev.cudaMalloc(1024);
    const uint64_t stale = buf;
    ASSERT_FALSE(dev.cudaFree(buf).has_value());
    const RunResult r = runPoke(dev, stale, 0);
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.faults[0].kind, FaultKind::UseAfterFree);
}

TEST(MechLmi, StackOverflowDetected)
{
    // One thread indexes its stack buffer out of bounds.
    IrFunction f = IrBuilder::makeKernel("stack_oob", {{"idx", Type::i64()}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto buf = b.alloca_(256, 4);
    auto idx = b.param(0);
    b.store(b.gep(buf, idx), b.constInt(7, Type::i32()));
    b.ret();
    IrModule m = module(std::move(f));

    Device dev(makeMechanism(MechanismKind::Lmi));
    const CompiledKernel k = dev.compile(m, "stack_oob");
    EXPECT_FALSE(dev.launch(k, 1, 1, {63}).faulted());
    const RunResult bad = dev.launch(k, 1, 1, {64});
    ASSERT_TRUE(bad.faulted());
    EXPECT_EQ(bad.faults[0].kind, FaultKind::SpatialOverflow);
}

TEST(MechLmi, SharedOverflowDetected)
{
    IrFunction f = IrBuilder::makeKernel("sh_oob", {{"idx", Type::i64()}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto tile = b.sharedBuffer("tile", 256, 4);
    auto idx = b.param(0);
    b.store(b.gep(tile, idx), b.constInt(3, Type::i32()));
    b.ret();
    IrModule m = module(std::move(f));

    Device dev(makeMechanism(MechanismKind::Lmi));
    const CompiledKernel k = dev.compile(m, "sh_oob");
    EXPECT_FALSE(dev.launch(k, 1, 32, {10}).faulted());
    EXPECT_TRUE(dev.launch(k, 1, 32, {70}).faulted());
}

TEST(MechLmi, DeviceHeapOverflowAndUafDetected)
{
    // malloc(300) -> 512 B under LMI; index 128 (of i32) is OOB.
    IrFunction f = IrBuilder::makeKernel("heap_oob", {{"idx", Type::i64()}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto buf = b.malloc_(b.constInt(300), 4);
    auto idx = b.param(0);
    b.store(b.gep(buf, idx), b.constInt(1, Type::i32()));
    b.free_(buf);
    // Use-after-free through the (nullified) pointer.
    auto v = b.load(b.gep(buf, b.constInt(0)));
    b.store(b.gep(buf, b.constInt(1)), v);
    b.ret();
    IrModule m = module(std::move(f));

    Device dev(makeMechanism(MechanismKind::Lmi));
    const CompiledKernel k = dev.compile(m, "heap_oob");
    // In-bounds store, then the UAF after free must fault.
    const RunResult uaf = dev.launch(k, 1, 1, {3});
    ASSERT_TRUE(uaf.faulted());
    EXPECT_EQ(uaf.faults[0].kind, FaultKind::UseAfterFree);

    // OOB store faults before the free is even reached.
    Device dev2(makeMechanism(MechanismKind::Lmi));
    const CompiledKernel k2 = dev2.compile(m, "heap_oob");
    const RunResult oob = dev2.launch(k2, 1, 1, {128});
    ASSERT_TRUE(oob.faulted());
    EXPECT_EQ(oob.faults[0].kind, FaultKind::SpatialOverflow);
}

TEST(MechLmi, UseAfterScopeDetected)
{
    // helper() returns a pointer to its dead stack buffer.
    IrModule m;
    {
        IrFunction helper = IrBuilder::makeKernel("helper", {});
        helper.ret_type = Type::ptr(4, MemSpace::Local);
        IrBuilder b(helper);
        b.setInsertPoint(b.block("entry"));
        auto buf = b.alloca_(256, 4);
        b.store(b.gep(buf, b.constInt(0)), b.constInt(5, Type::i32()));
        b.retVal(buf);
        m.functions.push_back(std::move(helper));
    }
    {
        IrFunction kernel = IrBuilder::makeKernel("uas", {{"out", Type::ptr(4)}});
        IrBuilder b(kernel);
        b.setInsertPoint(b.block("entry"));
        auto p = b.call("helper", Type::ptr(4, MemSpace::Local), {});
        auto v = b.load(b.gep(p, b.constInt(0)));
        b.store(b.gep(b.param(0), b.constInt(0)), v);
        b.ret();
        m.functions.push_back(std::move(kernel));
    }

    Device dev(makeMechanism(MechanismKind::Lmi));
    const uint64_t out = dev.cudaMalloc(256);
    const CompiledKernel k = dev.compile(m, "uas");
    const RunResult r = dev.launch(k, 1, 1, {out});
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.faults[0].kind, FaultKind::UseAfterScope);
}

TEST(MechLmi, FalsePositiveFreeLoopIdiom)
{
    // Fig. 14: ptr walks one past the end but never dereferences there.
    IrFunction f = IrBuilder::makeKernel("walk", {{"buf", Type::ptr(4)}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto header = b.block("header");
    auto body = b.block("body");
    auto exit = b.block("exit");

    b.setInsertPoint(entry);
    auto start = b.param(0);
    auto n = b.constInt(64);
    b.jump(header);

    b.setInsertPoint(header);
    auto i = b.phi(Type::i64(), {{b.constInt(0), entry}});
    // Rebuild the moving pointer each iteration (ptr = start + i).
    auto cond = b.icmp(CmpOp::LT, i, n);
    b.br(cond, body, exit);

    b.setInsertPoint(body);
    auto ptr = b.gep(start, i);
    auto v = b.load(ptr);
    b.store(ptr, b.iadd(v, b.constInt(1)));
    auto next = b.iadd(i, b.constInt(1));
    f.inst(i).ops.push_back(next);
    f.inst(i).phi_blocks.push_back(body);
    b.jump(header);

    b.setInsertPoint(exit);
    // The final gep computes one-past-the-end without dereferencing.
    b.gep(start, n);
    b.ret();

    Device dev(makeMechanism(MechanismKind::Lmi));
    const uint64_t buf = dev.cudaMalloc(64 * 4);
    const CompiledKernel k = dev.compile(module(std::move(f)), "walk");
    const RunResult r = dev.launch(k, 1, 1, {buf});
    EXPECT_FALSE(r.faulted()) << faultKindName(r.faults[0].kind);
    EXPECT_EQ(dev.peek32(buf), 1u);
}

TEST(MechGpuShield, GlobalDetectedButStackFineGrainedMissed)
{
    Device dev(makeMechanism(MechanismKind::GpuShield));
    const uint64_t buf = dev.cudaMalloc(64 * 4);
    // Fine-grained global OOB: detected (bounds table).
    const RunResult r = runPoke(dev, buf, 64);
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.faults[0].kind, FaultKind::RegionOverflow);

    // Stack intra-region overflow: missed (coarse region check).
    IrFunction f = IrBuilder::makeKernel("stack_oob", {{"idx", Type::i64()}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto sbuf = b.alloca_(256, 4);
    b.store(b.gep(sbuf, b.param(0)), b.constInt(7, Type::i32()));
    b.ret();
    Device dev2(makeMechanism(MechanismKind::GpuShield));
    const CompiledKernel k = dev2.compile(module(std::move(f)), "stack_oob");
    EXPECT_FALSE(dev2.launch(k, 1, 1, {64}).faulted());   // within stack
    EXPECT_TRUE(dev2.launch(k, 1, 1, {1 << 20}).faulted()); // beyond stack
}

TEST(MechGpuShield, NoTemporalSafety)
{
    Device dev(makeMechanism(MechanismKind::GpuShield));
    uint64_t buf = dev.cudaMalloc(1024);
    const uint64_t stale = buf;
    ASSERT_FALSE(dev.cudaFree(buf).has_value());
    EXPECT_FALSE(runPoke(dev, stale, 0).faulted());
}

TEST(MechGmod, AdjacentWriteCaughtAtKernelEnd)
{
    Device dev(makeMechanism(MechanismKind::Gmod));
    const uint64_t buf = dev.cudaMalloc(64 * 4);
    const RunResult r = runPoke(dev, buf, 64);
    // Canary: no abort mid-run, fault reported by the end-of-kernel sweep.
    EXPECT_FALSE(r.aborted);
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.faults[0].kind, FaultKind::CanaryCorruption);
}

TEST(MechGmod, NonAdjacentWriteMissed)
{
    Device dev(makeMechanism(MechanismKind::Gmod));
    const uint64_t buf = dev.cudaMalloc(64 * 4);
    const RunResult r = runPoke(dev, buf, 4096); // jumps over the canary
    EXPECT_FALSE(r.faulted());
}

TEST(MechCuCatch, GlobalAndCopiedUafDetected)
{
    Device dev(makeMechanism(MechanismKind::CuCatch));
    uint64_t buf = dev.cudaMalloc(64 * 4);
    EXPECT_FALSE(runPoke(dev, buf, 10).faulted());
    const RunResult oob = runPoke(dev, buf, 64);
    ASSERT_TRUE(oob.faulted());
    EXPECT_EQ(oob.faults[0].kind, FaultKind::SpatialOverflow);

    const uint64_t stale = buf;
    ASSERT_FALSE(dev.cudaFree(buf).has_value());
    const RunResult uaf = runPoke(dev, stale, 0);
    ASSERT_TRUE(uaf.faulted());
    EXPECT_EQ(uaf.faults[0].kind, FaultKind::UseAfterFree);
}

TEST(MechCuCatch, DeviceHeapUnprotected)
{
    IrFunction f = IrBuilder::makeKernel("heap_oob", {{"idx", Type::i64()}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto buf = b.malloc_(b.constInt(300), 4);
    b.store(b.gep(buf, b.param(0)), b.constInt(1, Type::i32()));
    b.ret();
    Device dev(makeMechanism(MechanismKind::CuCatch));
    const CompiledKernel k = dev.compile(module(std::move(f)), "heap_oob");
    // Far out-of-bounds heap write: cuCatch does not cover kernel malloc.
    EXPECT_FALSE(dev.launch(k, 1, 1, {4096}).faulted());
}

TEST(MechBaggy, SoftwareCheckTrapsOnOverflowingGep)
{
    Device dev(makeMechanism(MechanismKind::BaggySw));
    const uint64_t buf = dev.cudaMalloc(64 * 4);
    EXPECT_FALSE(runPoke(dev, buf, 63).faulted());
    const RunResult r = runPoke(dev, buf, 64);
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.faults[0].kind, FaultKind::SpatialOverflow);
}

TEST(MechBaggy, SlowerThanLmi)
{
    // Same workload, LMI vs software Baggy: baggy must cost more cycles.
    auto run = [](MechanismKind kind) {
        Device dev(makeMechanism(kind));
        const uint64_t buf = dev.cudaMalloc(4096 * 4);
        IrFunction f = IrBuilder::makeKernel("touch", {{"b", Type::ptr(4)}});
        IrBuilder b(f);
        b.setInsertPoint(b.block("entry"));
        auto p = b.param(0);
        auto t = b.gtid();
        b.store(b.gep(p, t), t);
        b.ret();
        IrModule m;
        m.functions.push_back(std::move(f));
        const CompiledKernel k = dev.compile(m, "touch");
        return dev.launch(k, 8, 128, {buf}).cycles;
    };
    const uint64_t lmi_cycles = run(MechanismKind::Lmi);
    const uint64_t baggy_cycles = run(MechanismKind::BaggySw);
    EXPECT_GT(baggy_cycles, lmi_cycles);
}

TEST(MechMemcheck, TripwireHitAndJitCost)
{
    Device dev(makeMechanism(MechanismKind::MemcheckDbi));
    const uint64_t buf = dev.cudaMalloc(64 * 4);
    const RunResult r = runPoke(dev, buf, 64); // lands in the red zone
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.faults[0].kind, FaultKind::TripwireHit);

    // Instrumentation makes the binary much larger.
    Device dev2(makeMechanism(MechanismKind::MemcheckDbi));
    Device base;
    const CompiledKernel ck = dev2.compile(pokeKernel(), "poke");
    const CompiledKernel cb = base.compile(pokeKernel(), "poke");
    EXPECT_GT(ck.program.code.size(), cb.program.code.size() + 50);
}

TEST(MechLmiDbi, DetectsOverflowWithoutHardware)
{
    Device dev(makeMechanism(MechanismKind::LmiDbi));
    const uint64_t buf = dev.cudaMalloc(64 * 4);
    EXPECT_FALSE(runPoke(dev, buf, 63).faulted());
    EXPECT_TRUE(runPoke(dev, buf, 64).faulted());
}

TEST(MechRegistry, NamesAndConstruction)
{
    for (MechanismKind kind :
         {MechanismKind::Baseline, MechanismKind::Lmi,
          MechanismKind::LmiLiveness, MechanismKind::GpuShield,
          MechanismKind::BaggySw, MechanismKind::Gmod,
          MechanismKind::CuCatch, MechanismKind::MemcheckDbi,
          MechanismKind::LmiDbi}) {
        auto mech = makeMechanism(kind);
        ASSERT_NE(mech, nullptr);
        EXPECT_EQ(mech->name(), mechanismKindName(kind));
    }
}

TEST(MechLmi, OverheadIsSmallOnComputeKernel)
{
    auto run = [](MechanismKind kind) {
        Device dev(makeMechanism(kind));
        const uint64_t buf = dev.cudaMalloc(64 * 1024);
        IrFunction f = IrBuilder::makeKernel("compute", {{"b", Type::ptr(4)}});
        IrBuilder b(f);
        b.setInsertPoint(b.block("entry"));
        auto p = b.param(0);
        auto t = b.gtid();
        auto x = b.load(b.gep(p, t));
        for (int i = 0; i < 20; ++i)
            x = b.iadd(b.imul(x, b.constInt(3)), b.constInt(1));
        b.store(b.gep(p, t), x);
        b.ret();
        IrModule m;
        m.functions.push_back(std::move(f));
        const CompiledKernel k = dev.compile(m, "compute");
        return dev.launch(k, 16, 128, {buf}).cycles;
    };
    const double base = double(run(MechanismKind::Baseline));
    const double with_lmi = double(run(MechanismKind::Lmi));
    // LMI's cost: a handful of extent-encode instructions + 3-cycle OCU
    // latency on pointer geps. Must be small (paper: 0.22% average; allow
    // slack for this tiny kernel).
    EXPECT_LT((with_lmi - base) / base, 0.10);
}

} // namespace
} // namespace lmi


namespace lmi {
namespace {

TEST(MechLmi, HostMemcpyBoundsChecked)
{
    Device dev(makeMechanism(MechanismKind::Lmi));
    const uint64_t buf = dev.cudaMalloc(256); // exact extent
    std::vector<uint8_t> payload(300, 0xAB);

    // In-bounds transfer passes.
    EXPECT_FALSE(dev.memcpyHtoD(buf, payload.data(), 256).has_value());

    // Overflowing transfer is refused before any byte is written.
    const MaybeFault f = dev.memcpyHtoD(buf, payload.data(), 300);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->kind, FaultKind::SpatialOverflow);
    EXPECT_EQ(dev.peek32(buf + 256), 0u); // nothing landed past the end

    // Transfers through a freed handle are refused too.
    uint64_t handle = buf;
    ASSERT_FALSE(dev.cudaFree(handle).has_value());
    const MaybeFault g = dev.memcpyDtoH(payload.data(), handle, 16);
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g->kind, FaultKind::InvalidExtent);
}

TEST(MechLmi, BaselineMemcpyUnchecked)
{
    Device dev;
    const uint64_t buf = dev.cudaMalloc(256);
    std::vector<uint8_t> payload(300, 0xCD);
    EXPECT_FALSE(dev.memcpyHtoD(buf, payload.data(), 300).has_value());
}

TEST(MechLmi, OcuLatencyKnob)
{
    LmiMechanism::Options opts;
    opts.ocu_latency = 9;
    LmiMechanism mech(opts);
    Instruction hinted;
    hinted.op = Opcode::IADD;
    hinted.hints = {true, 0};
    Instruction plain;
    plain.op = Opcode::IADD;
    EXPECT_EQ(mech.extraIntLatency(hinted), 9u);
    EXPECT_EQ(mech.extraIntLatency(plain), 0u);
}

} // namespace
} // namespace lmi

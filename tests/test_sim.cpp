/**
 * @file
 * End-to-end simulator tests: IR kernels compiled by the in-tree
 * compiler and executed on the GpuSim engine under the baseline
 * mechanism. These validate functional correctness (values land in
 * memory), SIMT divergence, barriers, device malloc, and the timing
 * counters the benches rely on.
 */

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "sim/device.hpp"

namespace lmi {
namespace {

using namespace ir;

IrModule
module(IrFunction f)
{
    IrModule m;
    m.functions.push_back(std::move(f));
    return m;
}

/** out[gtid] = a[gtid] + b[gtid] (i32). */
IrModule
vaddKernel()
{
    IrFunction f = IrBuilder::makeKernel(
        "vadd", {{"a", Type::ptr(4)}, {"b", Type::ptr(4)},
                 {"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto pa = b.param(0);
    auto pb = b.param(1);
    auto po = b.param(2);
    auto t = b.gtid();
    auto va = b.load(b.gep(pa, t));
    auto vb = b.load(b.gep(pb, t));
    auto sum = b.iadd(va, vb);
    b.store(b.gep(po, t), sum);
    b.ret();
    return module(std::move(f));
}

TEST(Sim, VectorAdd)
{
    Device dev;
    const unsigned n = 256;
    const uint64_t a = dev.cudaMalloc(n * 4);
    const uint64_t b = dev.cudaMalloc(n * 4);
    const uint64_t out = dev.cudaMalloc(n * 4);
    for (unsigned i = 0; i < n; ++i) {
        dev.poke32(a + 4 * i, i);
        dev.poke32(b + 4 * i, 1000 + i);
    }

    const CompiledKernel k = dev.compile(vaddKernel(), "vadd");
    const RunResult r = dev.launch(k, /*grid=*/2, /*block=*/128,
                                   {a, b, out});
    EXPECT_FALSE(r.faulted());
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
    for (unsigned i = 0; i < n; ++i)
        ASSERT_EQ(dev.peek32(out + 4 * i), 1000 + 2 * i) << "i=" << i;
    // Region profile: only global accesses.
    EXPECT_EQ(r.lds + r.sts + r.ldl + r.stl, 0u);
    EXPECT_GT(r.ldg, 0u);
    EXPECT_GT(r.stg, 0u);
}

TEST(Sim, GridStrideLoop)
{
    // out[i] = i for i in [0, n) with fewer threads than elements.
    IrFunction f = IrBuilder::makeKernel(
        "iota", {{"out", Type::ptr(4)}, {"n", Type::i64()}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto header = b.block("header");
    auto body = b.block("body");
    auto exit = b.block("exit");

    b.setInsertPoint(entry);
    auto out = b.param(0);
    auto n = b.param(1);
    auto t = b.gtid();
    auto ntid = b.ntid();
    auto nblk = b.nctaid();
    auto stride = b.imul(ntid, nblk);
    b.jump(header);

    b.setInsertPoint(header);
    auto i = b.phi(Type::i64(), {{t, entry}});
    auto cond = b.icmp(CmpOp::LT, i, n);
    b.br(cond, body, exit);

    b.setInsertPoint(body);
    b.store(b.gep(out, i), i);
    auto next = b.iadd(i, stride);
    f.inst(i).ops.push_back(next);
    f.inst(i).phi_blocks.push_back(body);
    b.jump(header);

    b.setInsertPoint(exit);
    b.ret();

    Device dev;
    const unsigned n_elems = 1000;
    const uint64_t out_buf = dev.cudaMalloc(n_elems * 4);
    const CompiledKernel k = dev.compile(module(std::move(f)), "iota");
    const RunResult r =
        dev.launch(k, 2, 64, {out_buf, n_elems});
    EXPECT_FALSE(r.faulted());
    for (unsigned i = 0; i < n_elems; ++i)
        ASSERT_EQ(dev.peek32(out_buf + 4 * i), i) << "i=" << i;
}

TEST(Sim, DivergentBranch)
{
    // out[gtid] = (gtid % 2 == 0) ? 7 : 9 — intra-warp divergence.
    IrFunction f = IrBuilder::makeKernel("div", {{"out", Type::ptr(4)}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto even = b.block("even");
    auto odd = b.block("odd");
    auto merge = b.block("merge");

    b.setInsertPoint(entry);
    auto out = b.param(0);
    auto t = b.gtid();
    auto bit = b.iand(t, b.constInt(1));
    auto is_even = b.icmp(CmpOp::EQ, bit, b.constInt(0));
    b.br(is_even, even, odd);

    b.setInsertPoint(even);
    auto seven = b.constInt(7, Type::i32());
    b.jump(merge);

    b.setInsertPoint(odd);
    auto nine = b.constInt(9, Type::i32());
    b.jump(merge);

    b.setInsertPoint(merge);
    auto v = b.phi(Type::i32(), {{seven, even}, {nine, odd}});
    b.store(b.gep(out, t), v);
    b.ret();

    Device dev;
    const unsigned n = 64;
    const uint64_t out_buf = dev.cudaMalloc(n * 4);
    const CompiledKernel k = dev.compile(module(std::move(f)), "div");
    const RunResult r = dev.launch(k, 1, n, {out_buf});
    EXPECT_FALSE(r.faulted());
    for (unsigned i = 0; i < n; ++i)
        ASSERT_EQ(dev.peek32(out_buf + 4 * i), i % 2 == 0 ? 7u : 9u)
            << "i=" << i;
}

TEST(Sim, SharedMemoryReverseWithBarrier)
{
    // Block-local reversal through shared memory: out[t] = in[B-1-t].
    IrFunction f = IrBuilder::makeKernel(
        "rev", {{"in", Type::ptr(4)}, {"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto in = b.param(0);
    auto out = b.param(1);
    auto tile = b.sharedBuffer("tile", 64 * 4, 4);
    auto t = b.tid();
    auto v = b.load(b.gep(in, t));
    b.store(b.gep(tile, t), v);
    b.barrier();
    auto last = b.constInt(63);
    auto mirrored = b.isub(last, t);
    auto rv = b.load(b.gep(tile, mirrored));
    b.store(b.gep(out, t), rv);
    b.ret();

    Device dev;
    const unsigned n = 64;
    const uint64_t in_buf = dev.cudaMalloc(n * 4);
    const uint64_t out_buf = dev.cudaMalloc(n * 4);
    for (unsigned i = 0; i < n; ++i)
        dev.poke32(in_buf + 4 * i, 100 + i);
    const CompiledKernel k = dev.compile(module(std::move(f)), "rev");
    const RunResult r = dev.launch(k, 1, n, {in_buf, out_buf});
    EXPECT_FALSE(r.faulted());
    for (unsigned i = 0; i < n; ++i)
        ASSERT_EQ(dev.peek32(out_buf + 4 * i), 100 + (n - 1 - i));
    EXPECT_GT(r.lds, 0u);
    EXPECT_GT(r.sts, 0u);
}

TEST(Sim, LocalStackBuffer)
{
    // Per-thread stack array staging: out[t] = t * 3.
    IrFunction f = IrBuilder::makeKernel("stk", {{"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto out = b.param(0);
    auto buf = b.alloca_(64, 4);
    auto t = b.gtid();
    auto v = b.imul(t, b.constInt(3));
    auto slot = b.gep(buf, b.constInt(5));
    b.store(slot, v);
    auto rv = b.load(slot);
    b.store(b.gep(out, t), rv);
    b.ret();

    Device dev;
    const unsigned n = 96;
    const uint64_t out_buf = dev.cudaMalloc(n * 4);
    const CompiledKernel k = dev.compile(module(std::move(f)), "stk");
    const RunResult r = dev.launch(k, 3, 32, {out_buf});
    EXPECT_FALSE(r.faulted());
    for (unsigned i = 0; i < n; ++i)
        ASSERT_EQ(dev.peek32(out_buf + 4 * i), 3 * i) << "i=" << i;
    EXPECT_GT(r.ldl, 0u);
    EXPECT_GT(r.stl, 0u);
}

TEST(Sim, DeviceMallocFree)
{
    // Each thread mallocs a scratch buffer, uses it, frees it.
    IrFunction f = IrBuilder::makeKernel("heap", {{"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto out = b.param(0);
    auto t = b.gtid();
    auto buf = b.malloc_(b.constInt(256), 4);
    auto slot = b.gep(buf, b.constInt(2));
    b.store(slot, t);
    auto rv = b.load(slot);
    b.store(b.gep(out, t), rv);
    b.free_(buf);
    b.ret();

    Device dev;
    const unsigned n = 64;
    const uint64_t out_buf = dev.cudaMalloc(n * 4);
    const CompiledKernel k = dev.compile(module(std::move(f)), "heap");
    const RunResult r = dev.launch(k, 2, 32, {out_buf});
    EXPECT_FALSE(r.faulted());
    for (unsigned i = 0; i < n; ++i)
        ASSERT_EQ(dev.peek32(out_buf + 4 * i), i);
    EXPECT_EQ(dev.heapAllocator().liveReservedBytes(), 0u);
}

TEST(Sim, FloatArithmetic)
{
    // out[t] = a[t] * 2.5 + 1.0 via FFMA (doubles in registers).
    IrFunction f = IrBuilder::makeKernel(
        "saxpyish", {{"a", Type::ptr(8)}, {"out", Type::ptr(8)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto a = b.param(0);
    auto out = b.param(1);
    auto t = b.gtid();
    auto va = b.load(b.gep(a, t));
    auto fv = b.ffma(va, b.constFloat(2.5), b.constFloat(1.0));
    b.store(b.gep(out, t), fv);
    b.ret();

    Device dev;
    const unsigned n = 32;
    const uint64_t abuf = dev.cudaMalloc(n * 8);
    const uint64_t obuf = dev.cudaMalloc(n * 8);
    for (unsigned i = 0; i < n; ++i) {
        const double d = double(i);
        uint64_t bits;
        std::memcpy(&bits, &d, 8);
        dev.poke64(abuf + 8 * i, bits);
    }
    const CompiledKernel k = dev.compile(module(std::move(f)), "saxpyish");
    const RunResult r = dev.launch(k, 1, n, {abuf, obuf});
    EXPECT_FALSE(r.faulted());
    for (unsigned i = 0; i < n; ++i) {
        const uint64_t bits = dev.peek64(obuf + 8 * i);
        double d;
        std::memcpy(&d, &bits, 8);
        EXPECT_DOUBLE_EQ(d, double(i) * 2.5 + 1.0) << "i=" << i;
    }
}

TEST(Sim, MultiSmLargeGrid)
{
    Device dev;
    const unsigned blocks = 200, threads = 128;
    const unsigned n = blocks * threads;
    const uint64_t a = dev.cudaMalloc(uint64_t(n) * 4);
    const uint64_t b2 = dev.cudaMalloc(uint64_t(n) * 4);
    const uint64_t out = dev.cudaMalloc(uint64_t(n) * 4);
    const CompiledKernel k = dev.compile(vaddKernel(), "vadd");
    const RunResult r = dev.launch(k, blocks, threads, {a, b2, out});
    EXPECT_FALSE(r.faulted());
    // 200 blocks over 80 SMs: at least 3 waves' worth of work ran.
    EXPECT_GT(r.thread_instructions, uint64_t(n) * 5);
    EXPECT_GT(r.dram_accesses, 0u);
}

TEST(Sim, CacheCountersPopulated)
{
    Device dev;
    const unsigned n = 4096;
    const uint64_t a = dev.cudaMalloc(n * 4);
    const uint64_t b2 = dev.cudaMalloc(n * 4);
    const uint64_t out = dev.cudaMalloc(n * 4);
    const CompiledKernel k = dev.compile(vaddKernel(), "vadd");
    const RunResult r = dev.launch(k, n / 128, 128, {a, b2, out});
    EXPECT_GT(r.l1_hits + r.l1_misses, 0u);
    EXPECT_GT(r.l2_hits + r.l2_misses, 0u);
}

TEST(Sim, LaunchValidatesParams)
{
    Device dev;
    const CompiledKernel k = dev.compile(vaddKernel(), "vadd");
    EXPECT_THROW(dev.launch(k, 1, 32, {}), FatalError);
    EXPECT_THROW(dev.launch(k, 0, 32, {1, 2, 3}), FatalError);
}

TEST(Sim, CudaFreeFaults)
{
    Device dev;
    uint64_t p = dev.cudaMalloc(1024);
    EXPECT_FALSE(dev.cudaFree(p).has_value());
    uint64_t again = p;
    const MaybeFault f = dev.cudaFree(again);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->kind, FaultKind::DoubleFree);
}

TEST(Sim, BarrierUnderIntraWarpDivergenceFaults)
{
    // Odd lanes of each warp take the barrier, even lanes skip it: the
    // warp arrives at BAR with a partial active mask, which on real
    // hardware deadlocks or silently misbehaves. The engine must raise
    // a BarrierDivergence fault with a diagnostic naming the warp.
    IrFunction f = IrBuilder::makeKernel("divbar", {{"out", Type::ptr(4)}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto bar = b.block("bar");
    auto done = b.block("done");

    b.setInsertPoint(entry);
    auto t = b.tid();
    auto odd = b.icmp(CmpOp::EQ, b.iand(t, b.constInt(1)), b.constInt(1));
    b.br(odd, bar, done);
    b.setInsertPoint(bar);
    b.barrier();
    b.jump(done);
    b.setInsertPoint(done);
    b.store(b.gep(b.param(0), t), t);
    b.ret();

    Device dev;
    const uint64_t out = dev.cudaMalloc(64 * 4);
    const CompiledKernel k = dev.compile(module(std::move(f)), "divbar");
    const RunResult r = dev.launch(k, 1, 32, {out});
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.faults[0].kind, FaultKind::BarrierDivergence);
    EXPECT_NE(r.faults[0].detail.find("warp"), std::string::npos);
}

TEST(Sim, BarrierSkippedByOneWarpFaults)
{
    // Warp 0 (tid < 32) parks at a barrier; warp 1 runs straight to the
    // exit. The block can never release the barrier — the engine must
    // diagnose the exited-while-waiting hang instead of spinning.
    IrFunction f = IrBuilder::makeKernel("skipbar", {{"out", Type::ptr(4)}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto bar = b.block("bar");
    auto done = b.block("done");

    b.setInsertPoint(entry);
    auto t = b.tid();
    auto low = b.icmp(CmpOp::LT, t, b.constInt(32));
    b.br(low, bar, done);
    b.setInsertPoint(bar);
    b.barrier();
    b.jump(done);
    b.setInsertPoint(done);
    b.store(b.gep(b.param(0), t), t);
    b.ret();

    Device dev;
    const uint64_t out = dev.cudaMalloc(64 * 4);
    const CompiledKernel k = dev.compile(module(std::move(f)), "skipbar");
    const RunResult r = dev.launch(k, 1, 64, {out});
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.faults[0].kind, FaultKind::BarrierDivergence);
    EXPECT_NE(r.faults[0].detail.find("exited"), std::string::npos);
}

TEST(Sim, UniformBarrierInBranchDoesNotFault)
{
    // All threads take the same (data-uniform) path to the barrier:
    // no divergence, the launch completes normally.
    IrFunction f = IrBuilder::makeKernel(
        "unibar", {{"out", Type::ptr(4)}, {"flag", Type::i64()}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto bar = b.block("bar");
    auto done = b.block("done");

    b.setInsertPoint(entry);
    auto t = b.tid();
    auto taken = b.icmp(CmpOp::EQ, b.param(1), b.constInt(1));
    b.br(taken, bar, done);
    b.setInsertPoint(bar);
    b.barrier();
    b.jump(done);
    b.setInsertPoint(done);
    b.store(b.gep(b.param(0), t), t);
    b.ret();

    Device dev;
    const uint64_t out = dev.cudaMalloc(64 * 4);
    const CompiledKernel k = dev.compile(module(std::move(f)), "unibar");
    const RunResult r = dev.launch(k, 1, 64, {out, 1});
    EXPECT_FALSE(r.faulted());
    for (unsigned i = 0; i < 64; ++i)
        ASSERT_EQ(dev.peek32(out + 4 * i), i);
}

} // namespace
} // namespace lmi

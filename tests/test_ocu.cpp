/**
 * @file
 * Unit tests for the Overflow Checking Unit and Extent Checker
 * (paper §VII, §VIII, §XII-A).
 */

#include <gtest/gtest.h>

#include "core/extent_checker.hpp"
#include "core/ocu.hpp"

namespace lmi {
namespace {

class OcuTest : public ::testing::Test
{
  protected:
    PointerCodec codec;
    StatRegistry stats;
    Ocu ocu{codec, &stats};
};

TEST_F(OcuTest, InBoundsArithmeticPasses)
{
    const uint64_t p = codec.encode(0x12345600, 256);
    // Walk the whole buffer: base .. base+255.
    for (uint64_t off = 0; off < 256; ++off) {
        const OcuResult r = ocu.check(p, p + off);
        EXPECT_FALSE(r.violation) << "offset " << off;
        EXPECT_TRUE(PointerCodec::isValid(r.out));
    }
    EXPECT_EQ(stats.counter("ocu.violations"), 0u);
}

TEST_F(OcuTest, OutOfBoundsPoisonsExtent)
{
    // §IV-A2's example: 0x12345678 + enough to reach 0x12345700 escapes
    // the 256 B buffer based at 0x12345600.
    const uint64_t p = codec.encode(0x12345678, 256);
    const OcuResult r = ocu.check(p, p + (0x12345700 - 0x12345678));
    EXPECT_TRUE(r.violation);
    EXPECT_FALSE(PointerCodec::isDereferenceable(r.out));
    // The repurposed debug extent records the cause (§IV-A3).
    EXPECT_EQ(PointerCodec::extentOf(r.out), kPoisonSpatial);
    EXPECT_EQ(PointerCodec::addressOf(r.out), 0x12345700u);
    EXPECT_EQ(stats.counter("ocu.violations"), 1u);
}

TEST_F(OcuTest, UnderflowBelowBasePoisons)
{
    const uint64_t p = codec.encode(0x12345600, 256);
    const OcuResult r = ocu.check(p, p - 1);
    EXPECT_TRUE(r.violation);
    EXPECT_FALSE(PointerCodec::isDereferenceable(r.out));
}

TEST_F(OcuTest, InvalidInputPropagatesInvalidity)
{
    const uint64_t freed =
        PointerCodec::invalidate(codec.encode(0x1000, 512));
    const OcuResult r = ocu.check(freed, freed + 8);
    EXPECT_FALSE(r.violation); // no *new* violation reported
    EXPECT_FALSE(PointerCodec::isValid(r.out));
    EXPECT_EQ(stats.counter("ocu.invalid_input"), 1u);
}

TEST_F(OcuTest, ExtentFieldTamperingIsCaught)
{
    // Arithmetic that carries into the extent field must poison.
    const uint64_t p = codec.encode(0x1000, 256);
    const uint64_t tampered = p + (uint64_t(1) << kExtentShift);
    const OcuResult r = ocu.check(p, tampered);
    EXPECT_TRUE(r.violation);
    EXPECT_FALSE(PointerCodec::isDereferenceable(r.out));
}

TEST_F(OcuTest, LargeBufferBoundary)
{
    const uint64_t size = uint64_t(1) << 20; // 1 MiB
    const uint64_t base = size * 5;
    const uint64_t p = codec.encode(base, size);
    EXPECT_FALSE(ocu.check(p, p + size - 1).violation);
    EXPECT_TRUE(ocu.check(p, p + size).violation);
}

TEST_F(OcuTest, ChecksAreCounted)
{
    const uint64_t p = codec.encode(0x2000, 256);
    ocu.check(p, p + 1);
    ocu.check(p, p + 2);
    EXPECT_EQ(stats.counter("ocu.checks"), 2u);
}

TEST_F(OcuTest, ExtraLatencyMatchesPaper)
{
    // §XI-C: two register slices -> three-cycle OCU delay.
    EXPECT_EQ(Ocu::kExtraLatency, 3u);
}

TEST(ExtentChecker, ValidPointerPassesAndStripsExtent)
{
    StatRegistry stats;
    ExtentChecker ec(&stats);
    const PointerCodec codec;
    const uint64_t p = codec.encode(0x1234500, 256);
    const EcResult r = ec.check(p);
    EXPECT_FALSE(r.fault.has_value());
    EXPECT_EQ(r.address, 0x1234500u);
    EXPECT_EQ(stats.counter("ec.faults"), 0u);
}

TEST(ExtentChecker, ZeroExtentFaultsWithCause)
{
    ExtentChecker ec;
    const uint64_t bad = 0x1234500; // no extent bits set

    const EcResult spatial = ec.check(bad, PoisonCause::Spatial);
    ASSERT_TRUE(spatial.fault.has_value());
    EXPECT_EQ(spatial.fault->kind, FaultKind::SpatialOverflow);

    const EcResult freed = ec.check(bad, PoisonCause::Freed);
    ASSERT_TRUE(freed.fault.has_value());
    EXPECT_EQ(freed.fault->kind, FaultKind::UseAfterFree);

    const EcResult scope = ec.check(bad, PoisonCause::ScopeExit);
    ASSERT_TRUE(scope.fault.has_value());
    EXPECT_EQ(scope.fault->kind, FaultKind::UseAfterScope);

    const EcResult unknown = ec.check(bad);
    ASSERT_TRUE(unknown.fault.has_value());
    EXPECT_EQ(unknown.fault->kind, FaultKind::InvalidExtent);
}

TEST(ExtentChecker, DelayedTerminationIdiom)
{
    // Fig. 14: the loop pointer walks one past the end but is never
    // dereferenced there — the OCU poisons it, yet no fault is raised
    // because the EC is never consulted for that value.
    const PointerCodec codec;
    Ocu ocu(codec);
    ExtentChecker ec;

    // 64 ints = 256 B, exactly the minimum allocation: one-past-the-end
    // leaves the aligned region. (A 16-int buffer would round up to 256 B
    // and the overrun would land in the alignment slack — allocation-
    // granularity detection, as in all pointer-aligning schemes.)
    const uint64_t size = 64 * sizeof(int);
    const uint64_t start = codec.encode(0x10000, size);
    uint64_t ptr = start;
    int faults = 0;
    for (int i = 0; i < 64; ++i) {
        // Dereference, then increment (ptr++ of an int*).
        if (ec.check(ptr).fault)
            ++faults;
        ptr = ocu.check(ptr, ptr + sizeof(int)).out;
    }
    EXPECT_EQ(faults, 0);
    // After the loop the pointer is poisoned but unused: still no fault.
    EXPECT_FALSE(PointerCodec::isDereferenceable(ptr));
    EXPECT_EQ(PointerCodec::extentOf(ptr), kPoisonSpatial);
    // A hypothetical dereference *would* fault — delayed termination —
    // and the debug extent self-classifies it as spatial.
    const EcResult late = ec.check(ptr);
    ASSERT_TRUE(late.fault.has_value());
    EXPECT_EQ(late.fault->kind, FaultKind::SpatialOverflow);
}

// Property sweep: for every extent, offsets inside never poison and the
// first offset outside always does.
class OcuBoundary : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(OcuBoundary, ExactBoundary)
{
    const PointerCodec codec;
    Ocu ocu(codec);
    const unsigned e = GetParam();
    const uint64_t size = codec.sizeForExtent(e);
    if (size > (uint64_t(1) << 40))
        GTEST_SKIP() << "test address region too small";
    const uint64_t base = size * 2;
    const uint64_t p = codec.encode(base, size);
    EXPECT_FALSE(ocu.check(p, p).violation);
    EXPECT_FALSE(ocu.check(p, p + size - 1).violation);
    EXPECT_TRUE(ocu.check(p, p + size).violation);
    EXPECT_TRUE(ocu.check(p, p - 1).violation);
}

INSTANTIATE_TEST_SUITE_P(AllExtents, OcuBoundary,
                         ::testing::Range(1u, kDebugExtentBase));

} // namespace
} // namespace lmi

/**
 * @file
 * Textual-IR parser tests: print/parse round trips (including every
 * Table V workload kernel and every security-suite construct), kernels
 * authored directly as text, and parse-error diagnostics.
 */

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/parser.hpp"
#include "sim/device.hpp"
#include "workloads/workloads.hpp"

namespace lmi {
namespace {

using namespace ir;

/** Structural equivalence check via normalization: print both sides. */
void
expectRoundTrip(const IrFunction& f)
{
    const std::string once = f.toString();
    const IrFunction parsed = parseFunction(once);
    const std::string twice = parsed.toString();
    EXPECT_EQ(once, twice);
}

TEST(Parser, RoundTripsSimpleKernel)
{
    IrFunction f = IrBuilder::makeKernel(
        "copy", {{"in", Type::ptr(4)}, {"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto t = b.gtid();
    auto v = b.load(b.gep(b.param(0), t));
    b.store(b.gep(b.param(1), t), v);
    b.ret();
    expectRoundTrip(f);
}

TEST(Parser, RoundTripsControlFlowAndPhis)
{
    IrFunction f = IrBuilder::makeKernel("loop", {{"n", Type::i64()}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto header = b.block("header");
    auto body = b.block("body");
    auto exit = b.block("exit");
    b.setInsertPoint(entry);
    auto zero = b.constInt(0);
    auto n = b.param(0);
    b.jump(header);
    b.setInsertPoint(header);
    auto i = b.phi(Type::i64(), {{zero, entry}});
    auto c = b.icmp(CmpOp::LT, i, n);
    b.br(c, body, exit);
    b.setInsertPoint(body);
    auto next = b.iadd(i, b.constInt(1));
    f.inst(i).ops.push_back(next);
    f.inst(i).phi_blocks.push_back(body);
    b.jump(header);
    b.setInsertPoint(exit);
    b.ret();
    expectRoundTrip(f);
}

TEST(Parser, RoundTripsFloatsExactly)
{
    IrFunction f = IrBuilder::makeKernel("fp", {{"out", Type::ptr(8)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto x = b.ffma(b.constFloat(1.0001), b.constFloat(2.5),
                    b.constFloat(0.3333333333333333));
    b.store(b.gep(b.param(0), b.constInt(0)), x);
    b.ret();
    expectRoundTrip(f);
}

TEST(Parser, RoundTripsSharedHeapAndCasts)
{
    IrFunction f = IrBuilder::makeKernel("kitchen", {{"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto tile = b.sharedBuffer("tile", 1024, 4);
    auto pool = b.dynamicShared(4);
    auto hp = b.malloc_(b.constInt(512), 4);
    auto lp = b.alloca_(128, 4);
    b.store(b.gep(tile, b.constInt(0)), b.constInt(1, Type::i32()));
    b.store(b.gep(pool, b.constInt(0)), b.constInt(2, Type::i32()));
    b.store(b.gep(hp, b.constInt(0)), b.constInt(3, Type::i32()));
    b.store(b.gep(lp, b.constInt(0)), b.constInt(4, Type::i32()));
    auto raw = b.ptrToInt(hp);
    auto back = b.intToPtr(raw, Type::ptr(4));
    auto v = b.load(back);
    b.store(b.gep(b.param(0), b.constInt(0)), v);
    b.free_(hp);
    b.barrier();
    b.ret();
    expectRoundTrip(f);
}

TEST(Parser, RoundTripsEveryWorkloadKernel)
{
    for (const auto& profile : workloadSuite()) {
        SCOPED_TRACE(profile.name);
        const IrModule m = buildWorkloadKernel(profile);
        expectRoundTrip(m.functions[0]);
    }
}

TEST(Parser, TextAuthoredKernelExecutes)
{
    // A kernel written as text end to end: parse, compile, run.
    const std::string text = R"(
define void @scale(ptr<4,global> %in, ptr<4,global> %out) {
entry:
  %1 = param 0 : ptr<4,global>
  %2 = param 1 : ptr<4,global>
  %3 = gtid : i64
  %4 = gep %1, %3 : ptr<4,global>
  %5 = load %4 : i32
  %6 = const 10 : i64
  %7 = imul %5, %6 : i64
  %8 = gep %2, %3 : ptr<4,global>
  store %8, %7
  ret
}
)";
    const IrModule m = parseModule(text);
    Device dev;
    const unsigned n = 64;
    const uint64_t in = dev.cudaMalloc(n * 4);
    const uint64_t out = dev.cudaMalloc(n * 4);
    for (unsigned i = 0; i < n; ++i)
        dev.poke32(in + 4 * i, i + 1);
    const CompiledKernel k = dev.compile(m, "scale");
    const RunResult r = dev.launch(k, 2, 32, {in, out});
    ASSERT_FALSE(r.faulted());
    for (unsigned i = 0; i < n; ++i)
        ASSERT_EQ(dev.peek32(out + 4 * i), 10 * (i + 1));
}

TEST(Parser, ModuleWithMultipleFunctions)
{
    IrModule m;
    {
        IrFunction helper = IrBuilder::makeKernel("helper", {});
        helper.ret_type = Type::i64();
        IrBuilder b(helper);
        b.setInsertPoint(b.block("entry"));
        b.retVal(b.constInt(5));
        m.functions.push_back(std::move(helper));
    }
    {
        IrFunction main_fn = IrBuilder::makeKernel("main", {{"out", Type::ptr(4)}});
        IrBuilder b(main_fn);
        b.setInsertPoint(b.block("entry"));
        auto r = b.call("helper", Type::i64(), {});
        b.store(b.gep(b.param(0), b.constInt(0)), r);
        b.ret();
        m.functions.push_back(std::move(main_fn));
    }
    const IrModule parsed = parseModule(printModule(m));
    ASSERT_EQ(parsed.functions.size(), 2u);
    EXPECT_EQ(printModule(parsed), printModule(m));
}

TEST(Parser, ErrorsCarryLineNumbers)
{
    EXPECT_THROW(parseModule("define void @x( {"), FatalError);
    EXPECT_THROW(parseFunction("define void @f() {\nentry:\n  bogus\n}\n"),
                 FatalError);
    EXPECT_THROW(parseFunction("define void @f() {\nentry:\n"
                               "  %1 = load %99 : i32\n  ret\n}\n"),
                 FatalError);
    EXPECT_THROW(
        parseFunction("define void @f() {\nentry:\n  jump -> nowhere\n}\n"),
        FatalError);
    EXPECT_THROW(parseModule(""), FatalError);
}

TEST(Parser, RejectsDuplicateDefinitions)
{
    EXPECT_THROW(parseFunction("define void @f() {\nentry:\n"
                               "  %1 = const 1 : i64\n"
                               "  %1 = const 2 : i64\n  ret\n}\n"),
                 FatalError);
    EXPECT_THROW(parseFunction("define void @f() {\nentry:\nentry:\n  ret\n}\n"),
                 FatalError);
}

TEST(Parser, CommentsAndBlankLinesIgnored)
{
    const std::string text = R"(
// leading comment
define void @k(ptr<4,global> %out) {
entry:
  // write one value
  %1 = param 0 : ptr<4,global>
  %2 = const 0 : i64

  %3 = gep %1, %2 : ptr<4,global>
  store %3, %2
  ret
}
)";
    const IrModule m = parseModule(text);
    EXPECT_EQ(m.functions[0].name, "k");
}

} // namespace
} // namespace lmi

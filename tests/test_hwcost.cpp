/**
 * @file
 * Hardware cost model tests (paper Table VI, §XI-C): the OCU component
 * model must land on the synthesis results the paper reports.
 */

#include <gtest/gtest.h>

#include "core/ocu.hpp"
#include "hwcost/hwcost.hpp"

namespace lmi {
namespace {

TEST(HwCost, OcuMatchesSynthesis)
{
    const UnitCost ocu = ocuCost();
    // Paper: 153 GE per thread.
    EXPECT_NEAR(ocu.totalGates(), 153.0, 1.5);
    // Paper: 0.63 ns critical path -> f_max = 1.587 GHz.
    EXPECT_NEAR(criticalPathNs(ocu), 0.63, 0.01);
    EXPECT_NEAR(fMaxGHz(ocu), 1.587, 0.01);
    EXPECT_EQ(ocu.per, "thread");
}

TEST(HwCost, PipelinePlanAtThreePlusGhz)
{
    // Paper §XI-C: two register slices close timing above 3 GHz and add
    // a three-cycle check delay.
    const UnitCost ocu = ocuCost();
    const PipelinePlan plan = planPipeline(ocu, 3.2);
    EXPECT_EQ(plan.register_slices, 2u);
    EXPECT_EQ(plan.check_latency_cycles, 3u);
    EXPECT_GT(plan.slice_gates, 0.0);
    // The simulator's OCU latency constant must agree with the plan.
    EXPECT_EQ(plan.check_latency_cycles, Ocu::kExtraLatency);
}

TEST(HwCost, NoPipeliningNeededAtLowClock)
{
    const UnitCost ocu = ocuCost();
    const PipelinePlan plan = planPipeline(ocu, 1.0);
    EXPECT_EQ(plan.register_slices, 0u);
    EXPECT_EQ(plan.check_latency_cycles, 1u);
}

TEST(HwCost, ExtentCheckerIsTiny)
{
    const UnitCost ec = extentCheckerCost();
    EXPECT_LT(ec.totalGates(), 20.0);
    EXPECT_LT(criticalPathNs(ec), 0.4);
}

TEST(HwCost, ComparisonTableShape)
{
    const auto rows = hardwareComparison();
    ASSERT_EQ(rows.size(), 5u);
    EXPECT_EQ(rows.back().scheme, "LMI");
    EXPECT_TRUE(rows.back().measured_here);
    EXPECT_EQ(rows.back().sram_bytes, 0u);
    // LMI's per-thread logic is the smallest entry, by a wide margin.
    for (const auto& r : rows)
        if (r.scheme != "LMI" && r.scheme != "IMT") {
            EXPECT_GT(r.gates, 5 * rows.back().gates) << r.scheme;
        }
    // And it is the only scheme without SRAM or cache-side verification.
    EXPECT_EQ(rows.back().verification_scope, "ALU (INT only), LSU");
}

TEST(HwCost, GateLibrarySensitivity)
{
    // A slower library lengthens the path but never changes the GE
    // ordering of the comparison.
    GateLibrary slow;
    slow.level_delay_ns = 0.2;
    const UnitCost ocu = ocuCost(slow);
    EXPECT_NEAR(criticalPathNs(ocu, slow), 1.4, 0.01);
    const PipelinePlan plan = planPipeline(ocu, 2.0, slow);
    EXPECT_GE(plan.register_slices, 2u);
}

} // namespace
} // namespace lmi

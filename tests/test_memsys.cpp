/**
 * @file
 * Direct unit tests for the memory-system models: SparseMemory,
 * CacheModel (set-associative LRU), and DramModel (bandwidth queueing).
 */

#include <gtest/gtest.h>

#include "sim/cache.hpp"
#include "sim/memory.hpp"

namespace lmi {
namespace {

TEST(SparseMemory, ZeroFilledOnFirstTouch)
{
    SparseMemory mem;
    EXPECT_EQ(mem.read(0x123456, 8), 0u);
    EXPECT_EQ(mem.pageCount(), 0u); // reads do not materialize pages
}

TEST(SparseMemory, ReadWriteRoundTrip)
{
    SparseMemory mem;
    mem.write(0x1000, 0xDEADBEEFCAFEF00Dull, 8);
    EXPECT_EQ(mem.read(0x1000, 8), 0xDEADBEEFCAFEF00Dull);
    EXPECT_EQ(mem.read(0x1000, 4), 0xCAFEF00Du);
    EXPECT_EQ(mem.read(0x1004, 4), 0xDEADBEEFu);
    EXPECT_EQ(mem.pageCount(), 1u);
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory mem;
    const uint64_t addr = SparseMemory::kPageBytes - 3;
    mem.write(addr, 0x1122334455667788ull, 8);
    EXPECT_EQ(mem.read(addr, 8), 0x1122334455667788ull);
    EXPECT_EQ(mem.pageCount(), 2u);
}

TEST(SparseMemory, BulkTransfer)
{
    SparseMemory mem;
    std::vector<uint8_t> payload(10000);
    for (size_t i = 0; i < payload.size(); ++i)
        payload[i] = uint8_t(i * 7);
    mem.writeBytes(123, payload.data(), payload.size());
    std::vector<uint8_t> back(payload.size());
    mem.readBytes(123, back.data(), back.size());
    EXPECT_EQ(back, payload);
}

TEST(SparseMemory, PartialWidthWritePreservesNeighbors)
{
    SparseMemory mem;
    mem.write(0x100, 0xAAAAAAAAAAAAAAAAull, 8);
    mem.write(0x102, 0x42, 1);
    EXPECT_EQ(mem.read(0x100, 8), 0xAAAAAAAAAA42AAAAull);
}

TEST(SparseMemory, ResetInvalidatesPageCache)
{
    // The one-entry last-page cache must not serve storage that
    // reset() released.
    SparseMemory mem;
    mem.write(0x2000, 0x1111, 2); // cache now points at this page
    EXPECT_EQ(mem.read(0x2000, 2), 0x1111u);
    mem.reset();
    EXPECT_EQ(mem.read(0x2000, 2), 0u);
    EXPECT_EQ(mem.pageCount(), 0u); // the read did not re-materialize
    mem.write(0x2000, 0x2222, 2);
    EXPECT_EQ(mem.read(0x2000, 2), 0x2222u);
}

TEST(SparseMemory, PageCacheTracksSwitches)
{
    // Alternating between pages must always read the right storage.
    SparseMemory mem;
    const uint64_t a = 0;
    const uint64_t b = 5 * SparseMemory::kPageBytes;
    mem.write(a, 0xAA, 1);
    mem.write(b, 0xBB, 1);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(mem.read(a, 1), 0xAAu);
        EXPECT_EQ(mem.read(b, 1), 0xBBu);
    }
    EXPECT_EQ(mem.pageCount(), 2u);
}

TEST(SparseMemory, TopOfAddressSpace)
{
    // Wild 64-bit addresses (reachable under the unprotected baseline)
    // must behave like any other page, including the very last one.
    SparseMemory mem;
    const uint64_t addr = ~uint64_t(0) - 7; // last 8 bytes of memory
    EXPECT_EQ(mem.read(addr, 8), 0u);
    mem.write(addr, 0x0123456789ABCDEFull, 8);
    EXPECT_EQ(mem.read(addr, 8), 0x0123456789ABCDEFull);
    EXPECT_EQ(mem.pageCount(), 1u);
}

TEST(CacheModel, HitAfterFill)
{
    CacheModel cache(1024, 2, 64);
    EXPECT_FALSE(cache.access(0x000)); // compulsory miss
    EXPECT_TRUE(cache.access(0x000));  // now resident
    EXPECT_TRUE(cache.access(0x03F));  // same line
    EXPECT_FALSE(cache.access(0x040)); // next line misses
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
}

TEST(CacheModel, LruEviction)
{
    // 2-way, 64 B lines, 2 sets (256 B total).
    CacheModel cache(256, 2, 64);
    // Three lines mapping to set 0: 0x000, 0x080, 0x100.
    EXPECT_FALSE(cache.access(0x000));
    EXPECT_FALSE(cache.access(0x080));
    EXPECT_TRUE(cache.access(0x000));  // refresh LRU
    EXPECT_FALSE(cache.access(0x100)); // evicts 0x080 (LRU)
    EXPECT_TRUE(cache.access(0x000));
    EXPECT_FALSE(cache.access(0x080)); // was evicted
}

TEST(CacheModel, LruEvictionOrderAcrossFullSet)
{
    // 4-way, one set (256 B): eviction order must track recency, not
    // fill order.
    CacheModel cache(256, 4, 64);
    EXPECT_FALSE(cache.access(0x000)); // A
    EXPECT_FALSE(cache.access(0x040)); // B
    EXPECT_FALSE(cache.access(0x080)); // C
    EXPECT_FALSE(cache.access(0x0C0)); // D — set now full
    EXPECT_TRUE(cache.access(0x000));  // refresh A
    EXPECT_TRUE(cache.access(0x080));  // refresh C
    EXPECT_FALSE(cache.access(0x100)); // E evicts B (least recent)
    EXPECT_TRUE(cache.access(0x0C0));  // D survived (and is refreshed)
    EXPECT_FALSE(cache.access(0x040)); // B gone; re-fill evicts A (LRU)
    EXPECT_TRUE(cache.access(0x080));  // C still resident
    EXPECT_FALSE(cache.access(0x000)); // A was the victim
}

TEST(CacheModel, SetIndexAliasing)
{
    // 2 KB, 2-way, 64 B lines => 16 sets. Lines 16 apart alias into
    // the same set; neighbors do not.
    CacheModel cache(2048, 2, 64);
    const uint64_t stride = 16 * 64;
    EXPECT_FALSE(cache.access(0));
    EXPECT_FALSE(cache.access(stride));
    EXPECT_FALSE(cache.access(2 * stride)); // evicts line 0 (2-way)
    EXPECT_FALSE(cache.access(0));          // conflict miss
    // A line in a different set is untouched by that thrashing.
    EXPECT_FALSE(cache.access(0x040)); // compulsory
    EXPECT_TRUE(cache.access(0x040));
}

TEST(CacheModel, NonPowerOfTwoSetCount)
{
    // 192 B direct-mapped with 64 B lines => 3 sets, indexed modulo 3.
    CacheModel cache(192, 1, 64);
    EXPECT_FALSE(cache.access(0));
    EXPECT_FALSE(cache.access(3 * 64)); // line 3 % 3 == set 0: evicts
    EXPECT_FALSE(cache.access(0));      // conflict miss
    EXPECT_FALSE(cache.access(64));     // line 1 -> set 1, independent
    EXPECT_TRUE(cache.access(64));
}

TEST(CacheModel, AccountingOnStridedSweeps)
{
    // Direct-mapped, 8 sets: a working set that fits is all-miss on
    // the first sweep and all-hit on the second; doubling the stride
    // footprint aliases every line and thrashes to 100% misses.
    CacheModel cache(512, 1, 64);
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t line = 0; line < 8; ++line)
            cache.access(line * 64);
    EXPECT_EQ(cache.misses(), 8u);
    EXPECT_EQ(cache.hits(), 8u);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);

    cache.reset();
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t line = 0; line < 16; ++line)
            cache.access(line * 64); // 16 lines, 8 sets: self-evicting
    EXPECT_EQ(cache.misses(), 32u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.0);
}

TEST(CacheModel, ResetClears)
{
    CacheModel cache(1024, 2, 64);
    cache.access(0x0);
    cache.access(0x0);
    cache.reset();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_FALSE(cache.access(0x0));
}

TEST(CacheModel, RejectsDegenerateConfig)
{
    EXPECT_THROW(CacheModel(0, 2, 64), FatalError);
    EXPECT_THROW(CacheModel(1024, 0, 64), FatalError);
}

TEST(DramModel, UncontendedLatency)
{
    DramModel dram(300, 64.0, 128); // 2 cycles per line
    EXPECT_EQ(dram.access(1000), 302u); // latency + own transfer
    EXPECT_EQ(dram.accesses(), 1u);
}

TEST(DramModel, QueueingUnderBurst)
{
    DramModel dram(300, 64.0, 128);
    // Ten back-to-back requests at the same cycle: each queues behind
    // the previous transfers.
    unsigned prev = 0;
    for (int i = 0; i < 10; ++i) {
        const unsigned lat = dram.access(0);
        EXPECT_GT(lat, prev);
        prev = lat;
    }
    EXPECT_EQ(prev, 300u + 10 * 2);
}

TEST(DramModel, IdleGapsDrainTheQueue)
{
    DramModel dram(300, 64.0, 128);
    for (int i = 0; i < 10; ++i)
        dram.access(0);
    // Far in the future the channel is idle again.
    EXPECT_EQ(dram.access(100000), 302u);
}

} // namespace
} // namespace lmi

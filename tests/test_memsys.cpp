/**
 * @file
 * Direct unit tests for the memory-system models: SparseMemory,
 * CacheModel (set-associative LRU), and DramModel (bandwidth queueing).
 */

#include <gtest/gtest.h>

#include "sim/cache.hpp"
#include "sim/memory.hpp"

namespace lmi {
namespace {

TEST(SparseMemory, ZeroFilledOnFirstTouch)
{
    SparseMemory mem;
    EXPECT_EQ(mem.read(0x123456, 8), 0u);
    EXPECT_EQ(mem.pageCount(), 0u); // reads do not materialize pages
}

TEST(SparseMemory, ReadWriteRoundTrip)
{
    SparseMemory mem;
    mem.write(0x1000, 0xDEADBEEFCAFEF00Dull, 8);
    EXPECT_EQ(mem.read(0x1000, 8), 0xDEADBEEFCAFEF00Dull);
    EXPECT_EQ(mem.read(0x1000, 4), 0xCAFEF00Du);
    EXPECT_EQ(mem.read(0x1004, 4), 0xDEADBEEFu);
    EXPECT_EQ(mem.pageCount(), 1u);
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory mem;
    const uint64_t addr = SparseMemory::kPageBytes - 3;
    mem.write(addr, 0x1122334455667788ull, 8);
    EXPECT_EQ(mem.read(addr, 8), 0x1122334455667788ull);
    EXPECT_EQ(mem.pageCount(), 2u);
}

TEST(SparseMemory, BulkTransfer)
{
    SparseMemory mem;
    std::vector<uint8_t> payload(10000);
    for (size_t i = 0; i < payload.size(); ++i)
        payload[i] = uint8_t(i * 7);
    mem.writeBytes(123, payload.data(), payload.size());
    std::vector<uint8_t> back(payload.size());
    mem.readBytes(123, back.data(), back.size());
    EXPECT_EQ(back, payload);
}

TEST(SparseMemory, PartialWidthWritePreservesNeighbors)
{
    SparseMemory mem;
    mem.write(0x100, 0xAAAAAAAAAAAAAAAAull, 8);
    mem.write(0x102, 0x42, 1);
    EXPECT_EQ(mem.read(0x100, 8), 0xAAAAAAAAAA42AAAAull);
}

TEST(CacheModel, HitAfterFill)
{
    CacheModel cache(1024, 2, 64);
    EXPECT_FALSE(cache.access(0x000)); // compulsory miss
    EXPECT_TRUE(cache.access(0x000));  // now resident
    EXPECT_TRUE(cache.access(0x03F));  // same line
    EXPECT_FALSE(cache.access(0x040)); // next line misses
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
}

TEST(CacheModel, LruEviction)
{
    // 2-way, 64 B lines, 2 sets (256 B total).
    CacheModel cache(256, 2, 64);
    // Three lines mapping to set 0: 0x000, 0x080, 0x100.
    EXPECT_FALSE(cache.access(0x000));
    EXPECT_FALSE(cache.access(0x080));
    EXPECT_TRUE(cache.access(0x000));  // refresh LRU
    EXPECT_FALSE(cache.access(0x100)); // evicts 0x080 (LRU)
    EXPECT_TRUE(cache.access(0x000));
    EXPECT_FALSE(cache.access(0x080)); // was evicted
}

TEST(CacheModel, ResetClears)
{
    CacheModel cache(1024, 2, 64);
    cache.access(0x0);
    cache.access(0x0);
    cache.reset();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_FALSE(cache.access(0x0));
}

TEST(CacheModel, RejectsDegenerateConfig)
{
    EXPECT_THROW(CacheModel(0, 2, 64), FatalError);
    EXPECT_THROW(CacheModel(1024, 0, 64), FatalError);
}

TEST(DramModel, UncontendedLatency)
{
    DramModel dram(300, 64.0, 128); // 2 cycles per line
    EXPECT_EQ(dram.access(1000), 302u); // latency + own transfer
    EXPECT_EQ(dram.accesses(), 1u);
}

TEST(DramModel, QueueingUnderBurst)
{
    DramModel dram(300, 64.0, 128);
    // Ten back-to-back requests at the same cycle: each queues behind
    // the previous transfers.
    unsigned prev = 0;
    for (int i = 0; i < 10; ++i) {
        const unsigned lat = dram.access(0);
        EXPECT_GT(lat, prev);
        prev = lat;
    }
    EXPECT_EQ(prev, 300u + 10 * 2);
}

TEST(DramModel, IdleGapsDrainTheQueue)
{
    DramModel dram(300, 64.0, 128);
    for (int i = 0; i < 10; ++i)
        dram.access(0);
    // Far in the future the channel is idle again.
    EXPECT_EQ(dram.access(100000), 302u);
}

} // namespace
} // namespace lmi

/**
 * @file
 * ExperimentRunner subsystem tests:
 *
 *  - parallel sweeps are bit-identical to serial execution (the
 *    determinism contract that justifies running paper figures across a
 *    thread pool);
 *  - the on-disk result cache hits on identical inputs and misses on
 *    any config change (fingerprint invalidation);
 *  - a job that throws mid-sweep is recorded, and every other cell
 *    still completes;
 *  - the generic pool captures failures/timeouts per job;
 *  - SharedStatRegistry aggregates concurrent producers;
 *  - CSV/JSON export and payload round-tripping.
 */

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <functional>
#include <gtest/gtest.h>
#include <thread>

#include "arch/mem_map.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/result_cache.hpp"
#include "sim/config.hpp"

namespace lmi {
namespace {

namespace fs = std::filesystem;

/** A tiny profile that simulates in milliseconds. */
WorkloadProfile
tinyProfile(const std::string& name)
{
    WorkloadProfile p;
    p.name = name;
    p.suite = "test";
    p.grid_blocks = 2;
    p.block_threads = 32;
    p.elems_per_thread = 2;
    p.compute_iters = 2;
    return p;
}

SweepSpec
tinySpec()
{
    SweepSpec spec;
    spec.profiles = {tinyProfile("t-stream"), tinyProfile("t-scatter"),
                     tinyProfile("t-shared")};
    spec.profiles[1].scattered = true;
    spec.profiles[2].shared_accesses = 1;
    spec.profiles[2].shared_tile_bytes = 1024;
    spec.mechanisms = {MechanismKind::Baseline, MechanismKind::Lmi};
    return spec;
}

std::vector<std::string>
payloads(const SweepResult& sweep)
{
    std::vector<std::string> out;
    for (const CellResult& cell : sweep.cells)
        out.push_back(serializeCellPayload(cell));
    return out;
}

std::string
freshDir(const std::string& tag)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("lmi_runner_" + tag);
    fs::remove_all(dir);
    return dir.string();
}

TEST(ConfigHash, DetectsEveryRelevantFieldChange)
{
    const GpuConfig base;
    GpuConfig changed = base;
    EXPECT_EQ(configHash(base), configHash(changed));
    changed.l1_latency += 1;
    EXPECT_NE(configHash(base), configHash(changed));
    changed = base;
    changed.dram_bytes_per_cycle *= 2.0;
    EXPECT_NE(configHash(base), configHash(changed));
}

TEST(CellFingerprint, SeparatesGridAxes)
{
    SweepCell a;
    a.workload = tinyProfile("t");
    SweepCell b = a;
    EXPECT_EQ(cellFingerprint(a), cellFingerprint(b));
    b.mechanism = MechanismKind::Lmi;
    EXPECT_NE(cellFingerprint(a), cellFingerprint(b));
    b = a;
    b.scale = 0.5;
    EXPECT_NE(cellFingerprint(a), cellFingerprint(b));
    b = a;
    b.workload.host_allocs = {4096};
    EXPECT_NE(cellFingerprint(a), cellFingerprint(b));
    b = a;
    b.config.l2_latency += 10;
    EXPECT_NE(cellFingerprint(a), cellFingerprint(b));
}

TEST(CellPayload, RoundTripsExactly)
{
    CellResult cell;
    cell.workload = "weird \"name\"\nwith newline";
    cell.mechanism = MechanismKind::GpuShield;
    cell.scale = 0.125;
    cell.fingerprint = 0xdeadbeefcafef00dull;
    cell.ok = true;
    cell.result.cycles = 123456789;
    cell.result.instructions = 42;
    cell.result.faults.push_back(
        {FaultKind::SpatialOverflow, 0x1000, "detail with | pipe\nand nl"});
    cell.result.stats.inc("ocu.checks", 7);
    cell.result.stats.set("gauge.x", 0.3333333333333333);
    cell.device_stats.inc("alloc.count", 3);
    cell.peak_reserved = 4096;

    const std::string text = serializeCellPayload(cell);
    CellResult back;
    ASSERT_TRUE(deserializeCellPayload(text, cell.fingerprint, &back));
    EXPECT_EQ(serializeCellPayload(back), text);
    EXPECT_EQ(back.workload, cell.workload);
    EXPECT_EQ(back.result.cycles, cell.result.cycles);
    ASSERT_EQ(back.result.faults.size(), 1u);
    EXPECT_EQ(back.result.faults[0].detail, cell.result.faults[0].detail);
    EXPECT_EQ(back.result.stats.counter("ocu.checks"), 7u);
    EXPECT_EQ(back.device_stats.counter("alloc.count"), 3u);

    // Wrong fingerprint => treated as a miss.
    EXPECT_FALSE(deserializeCellPayload(text, 1, &back));
}

TEST(SweepDeterminism, ParallelIsByteIdenticalToSerial)
{
    SweepSpec serial = tinySpec();
    serial.jobs = 1;
    SweepSpec parallel = tinySpec();
    parallel.jobs = 4;

    const SweepResult a = runSweep(serial);
    const SweepResult b = runSweep(parallel);
    ASSERT_EQ(a.cells.size(), 6u);
    ASSERT_EQ(a.cells.size(), b.cells.size());
    EXPECT_EQ(a.failures, 0u);
    EXPECT_EQ(b.failures, 0u);
    EXPECT_EQ(payloads(a), payloads(b));

    // Aggregated totals must agree too (merge order may differ; the
    // registry is commutative).
    EXPECT_EQ(a.totals.counters(), b.totals.counters());
}

TEST(SweepCache, HitsOnRerunMissesOnConfigChange)
{
    SweepSpec spec = tinySpec();
    spec.jobs = 2;
    spec.cache_dir = freshDir("cache");

    const SweepResult cold = runSweep(spec);
    EXPECT_EQ(cold.cache_hits, 0u);
    EXPECT_EQ(cold.cache_misses, cold.cells.size());
    EXPECT_EQ(cold.failures, 0u);

    const SweepResult warm = runSweep(spec);
    EXPECT_EQ(warm.cache_hits, warm.cells.size());
    EXPECT_EQ(warm.cache_misses, 0u);
    for (const CellResult& cell : warm.cells)
        EXPECT_TRUE(cell.from_cache);
    EXPECT_EQ(payloads(cold), payloads(warm));

    // Any config change moves the fingerprints: full re-simulation.
    spec.config.l1_latency += 5;
    const SweepResult changed = runSweep(spec);
    EXPECT_EQ(changed.cache_hits, 0u);
    EXPECT_EQ(changed.cache_misses, changed.cells.size());
    for (const CellResult& cell : changed.cells)
        EXPECT_FALSE(cell.from_cache);

    fs::remove_all(spec.cache_dir);
}

TEST(SweepFailure, ThrowingCellIsRecordedOthersComplete)
{
    SweepSpec spec = tinySpec();
    // Inject a cell whose host allocation cannot be satisfied: the
    // runtime throws FatalError mid-sweep.
    WorkloadProfile doomed = tinyProfile("t-doomed");
    doomed.host_allocs = {2 * kGlobalSize, 64};
    spec.profiles.push_back(doomed);
    spec.jobs = 4;

    const SweepResult sweep = runSweep(spec);
    ASSERT_EQ(sweep.cells.size(), 8u);
    EXPECT_EQ(sweep.failures, 2u); // doomed under both mechanisms

    size_t ok = 0, failed = 0;
    for (const CellResult& cell : sweep.cells) {
        if (cell.workload == "t-doomed") {
            EXPECT_FALSE(cell.ok);
            EXPECT_NE(cell.error.find("exhausted"), std::string::npos);
            ++failed;
        } else {
            EXPECT_TRUE(cell.ok);
            EXPECT_GT(cell.result.cycles, 0u);
            ++ok;
        }
    }
    EXPECT_EQ(ok, 6u);
    EXPECT_EQ(failed, 2u);
}

TEST(SweepTimeout, AdvisoryFlagMarksSlowCells)
{
    SweepSpec spec = tinySpec();
    spec.jobs = 2;
    spec.timeout_sec = 1e-9; // everything overruns; nothing is dropped
    const SweepResult sweep = runSweep(spec);
    EXPECT_EQ(sweep.failures, 0u);
    EXPECT_EQ(sweep.timeouts, sweep.cells.size());
    for (const CellResult& cell : sweep.cells) {
        EXPECT_TRUE(cell.timed_out);
        EXPECT_TRUE(cell.ok);
    }
}

TEST(ExperimentRunnerPool, CapturesFailuresInInputOrder)
{
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 16; ++i) {
        jobs.push_back([&ran, i] {
            ++ran;
            if (i % 4 == 3)
                throw std::runtime_error("job " + std::to_string(i));
        });
    }
    ExperimentRunner::Options opts;
    opts.jobs = 4;
    ExperimentRunner runner(opts);
    const auto outcomes = runner.run(jobs);
    EXPECT_EQ(ran.load(), 16);
    ASSERT_EQ(outcomes.size(), 16u);
    for (int i = 0; i < 16; ++i) {
        if (i % 4 == 3) {
            EXPECT_FALSE(outcomes[size_t(i)].ok);
            EXPECT_EQ(outcomes[size_t(i)].error,
                      "job " + std::to_string(i));
        } else {
            EXPECT_TRUE(outcomes[size_t(i)].ok);
        }
    }
}

TEST(SharedStatRegistryTest, ConcurrentMergesSum)
{
    SharedStatRegistry shared;
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&shared] {
            for (int i = 0; i < 100; ++i) {
                StatRegistry local;
                local.inc("x", 2);
                shared.merge(local);
                shared.inc("y");
            }
        });
    }
    for (auto& t : threads)
        t.join();
    const StatRegistry snap = shared.snapshot();
    EXPECT_EQ(snap.counter("x"), 1600u);
    EXPECT_EQ(snap.counter("y"), 800u);
}

TEST(ResultCacheTest, IgnoresCorruptEntries)
{
    const std::string dir = freshDir("corrupt");
    ResultCache cache(dir);
    CellResult out;
    EXPECT_FALSE(cache.load(42, &out));

    CellResult cell;
    cell.workload = "w";
    cell.fingerprint = 42;
    cell.ok = true;
    cell.result.cycles = 7;
    cache.store(cell);
    ASSERT_TRUE(cache.load(42, &out));
    EXPECT_EQ(out.result.cycles, 7u);
    EXPECT_TRUE(out.ok);

    // Truncate the entry: load degrades to a miss, not a crash.
    for (const auto& entry : fs::directory_iterator(dir)) {
        std::ofstream f(entry.path(), std::ios::trunc);
        f << "garbage";
    }
    EXPECT_FALSE(cache.load(42, &out));
    fs::remove_all(dir);
}

TEST(ResultCacheTest, RejectsTruncatedPayloadPrefix)
{
    // A killed writer (or a partially synced disk) can leave a
    // byte-for-byte *prefix* of a valid payload — well-formed lines
    // all the way down, just fewer of them. Without the end sentinel
    // such a prefix would deserialize as a complete (wrong) result and
    // poison every later cached sweep.
    CellResult cell;
    cell.workload = "w";
    cell.fingerprint = 43;
    cell.ok = true;
    cell.result.cycles = 9;
    cell.device_stats.inc("alloc.count", 3);
    const std::string full = serializeCellPayload(cell);

    CellResult out;
    ASSERT_TRUE(deserializeCellPayload(full, 43, &out));
    for (const size_t cut :
         {full.size() - 2, full.size() - 4, full.size() / 2, size_t(20)})
        EXPECT_FALSE(
            deserializeCellPayload(full.substr(0, cut), 43, &out))
            << "accepted a " << cut << "-byte prefix of " << full.size();
}

TEST(SweepExport, CsvAndJsonCoverEveryCell)
{
    SweepSpec spec = tinySpec();
    spec.jobs = 2;
    const SweepResult sweep = runSweep(spec);

    const std::string csv = sweep.renderCsv();
    // Header + one line per cell.
    EXPECT_EQ(size_t(std::count(csv.begin(), csv.end(), '\n')),
              sweep.cells.size() + 1);
    EXPECT_NE(csv.find("workload,mechanism,tier,scale,status"),
              std::string::npos);
    EXPECT_NE(csv.find("t-scatter"), std::string::npos);

    const std::string json = sweep.renderJson();
    EXPECT_NE(json.find("\"schema_version\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"cells\""), std::string::npos);
    EXPECT_NE(json.find("\"tier\": \"detailed\""), std::string::npos);
    EXPECT_NE(json.find("\"t-shared\""), std::string::npos);
    EXPECT_NE(json.find("\"cache_hits\": 0"), std::string::npos);

    EXPECT_NE(sweep.find("t-stream", MechanismKind::Lmi, 1.0), nullptr);
    EXPECT_EQ(sweep.find("absent", MechanismKind::Lmi, 1.0), nullptr);
}

TEST(TextTableCsv, EscapesOnlyWhenNeeded)
{
    TextTable t({"a", "b"});
    t.addRow({"plain", "with,comma"});
    t.addSeparator();
    t.addRow({"quote\"inside", "multi\nline"});
    EXPECT_EQ(t.renderCsv(),
              "a,b\nplain,\"with,comma\"\n\"quote\"\"inside\",\"multi\n"
              "line\"\n");
}

} // namespace
} // namespace lmi

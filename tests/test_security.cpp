/**
 * @file
 * Security-suite tests: the Table III detection matrix must emerge from
 * mechanism semantics, and the baseline must stay clean on everything
 * except runtime-detected free errors.
 */

#include <gtest/gtest.h>

#include "security/violations.hpp"

namespace lmi {
namespace {

unsigned
categoryDetected(const SecurityScore& s, ViolationCategory cat)
{
    auto it = s.detected.find(cat);
    return it == s.detected.end() ? 0 : it->second;
}

TEST(Security, SuiteShapeMatchesTableIII)
{
    std::map<ViolationCategory, unsigned> totals;
    for (const auto& c : violationSuite())
        ++totals[c.category];
    EXPECT_EQ(totals[ViolationCategory::GlobalOoB], 2u);
    EXPECT_EQ(totals[ViolationCategory::HeapOoB], 3u);
    EXPECT_EQ(totals[ViolationCategory::LocalOoB], 8u);
    EXPECT_EQ(totals[ViolationCategory::SharedOoB], 6u);
    EXPECT_EQ(totals[ViolationCategory::IntraOoB], 3u);
    EXPECT_EQ(totals[ViolationCategory::UseAfterFree], 8u);
    EXPECT_EQ(totals[ViolationCategory::UseAfterScope], 4u);
    EXPECT_EQ(totals[ViolationCategory::InvalidFree], 2u);
    EXPECT_EQ(totals[ViolationCategory::DoubleFree], 2u);
    EXPECT_EQ(violationSuite().size(), 38u);
}

TEST(Security, BaselineStaysClean)
{
    for (const auto& c : violationSuite()) {
        SCOPED_TRACE(c.id);
        Device dev(makeMechanism(MechanismKind::Baseline));
        const CaseOutcome outcome = c.run(dev);
        EXPECT_EQ(outcome.detected(), c.baseline_detects)
            << (outcome.faults.empty()
                    ? "no fault"
                    : outcome.faults[0].detail);
    }
}

TEST(Security, GmodRowMatchesPaper)
{
    const SecurityScore s = evaluateMechanism(MechanismKind::Gmod);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::GlobalOoB), 1u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::HeapOoB), 0u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::LocalOoB), 0u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::SharedOoB), 0u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::IntraOoB), 0u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::UseAfterFree), 0u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::UseAfterScope), 0u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::InvalidFree), 2u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::DoubleFree), 2u);
}

TEST(Security, GpuShieldRowMatchesPaper)
{
    const SecurityScore s = evaluateMechanism(MechanismKind::GpuShield);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::GlobalOoB), 2u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::HeapOoB), 1u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::LocalOoB), 2u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::SharedOoB), 0u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::IntraOoB), 0u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::UseAfterFree), 0u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::UseAfterScope), 0u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::InvalidFree), 2u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::DoubleFree), 2u);
}

TEST(Security, CuCatchRowMatchesPaper)
{
    const SecurityScore s = evaluateMechanism(MechanismKind::CuCatch);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::GlobalOoB), 2u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::HeapOoB), 0u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::LocalOoB), 6u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::SharedOoB), 5u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::IntraOoB), 0u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::UseAfterFree), 4u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::UseAfterScope), 4u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::InvalidFree), 2u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::DoubleFree), 2u);
}

TEST(Security, LmiRowMatchesPaper)
{
    const SecurityScore s = evaluateMechanism(MechanismKind::Lmi);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::GlobalOoB), 2u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::HeapOoB), 3u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::LocalOoB), 8u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::SharedOoB), 6u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::IntraOoB), 0u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::UseAfterFree), 4u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::UseAfterScope), 4u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::InvalidFree), 2u);
    EXPECT_EQ(categoryDetected(s, ViolationCategory::DoubleFree), 2u);
    // Temporal coverage: 12/16 = 75%, as reported.
    EXPECT_EQ(s.temporalDetected(), 12u);
    EXPECT_EQ(s.temporalTotal(), 16u);
}

TEST(Security, LmiLivenessClosesCopiedPointerGap)
{
    // The §XII-C extension catches the four copied-pointer UAF cases
    // the base mechanism misses.
    const SecurityScore base = evaluateMechanism(MechanismKind::Lmi);
    const SecurityScore ext =
        evaluateMechanism(MechanismKind::LmiLiveness);
    EXPECT_EQ(categoryDetected(base, ViolationCategory::UseAfterFree), 4u);
    EXPECT_EQ(categoryDetected(ext, ViolationCategory::UseAfterFree), 8u);
    // Spatial coverage is unchanged.
    EXPECT_EQ(ext.spatialDetected(), base.spatialDetected());
}

TEST(Security, SpatialAndTemporalTallies)
{
    const SecurityScore s = evaluateMechanism(MechanismKind::Lmi);
    EXPECT_EQ(s.spatialTotal(), 22u);
    EXPECT_EQ(s.spatialDetected(), 19u);
    EXPECT_EQ(s.temporalTotal(), 16u);
}

} // namespace
} // namespace lmi

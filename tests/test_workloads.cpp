/**
 * @file
 * Workload-suite tests: every Table V profile must build, verify,
 * execute cleanly under baseline and LMI, and show the region mix its
 * profile promises (the Fig. 1 characteristics).
 */

#include <gtest/gtest.h>

#include "mechanisms/registry.hpp"
#include "workloads/workloads.hpp"

namespace lmi {
namespace {

TEST(Workloads, SuiteMatchesTableV)
{
    const auto& suite = workloadSuite();
    EXPECT_EQ(suite.size(), 28u);
    unsigned rodinia = 0, tango = 0, ft = 0, ad = 0;
    for (const auto& p : suite) {
        if (p.suite == "Rodinia") ++rodinia;
        if (p.suite == "Tango") ++tango;
        if (p.suite == "FasterTransformer") ++ft;
        if (p.suite == "AD") ++ad;
    }
    EXPECT_EQ(rodinia, 15u);
    EXPECT_EQ(tango, 4u);
    EXPECT_EQ(ft, 5u);
    EXPECT_EQ(ad, 4u);
}

TEST(Workloads, DbiSetExcludesAd)
{
    EXPECT_EQ(dbiWorkloads().size(), 24u);
    for (const auto& p : dbiWorkloads())
        EXPECT_NE(p.suite, "AD");
}

TEST(Workloads, FindByName)
{
    EXPECT_EQ(findWorkload("needle").name, "needle");
    EXPECT_THROW(findWorkload("nonexistent"), FatalError);
}

TEST(Workloads, AllKernelsVerify)
{
    for (const auto& p : workloadSuite()) {
        SCOPED_TRACE(p.name);
        ir::IrModule m = buildWorkloadKernel(p);
        EXPECT_NO_THROW(ir::verify(m));
    }
}

TEST(Workloads, SharedHeavyProfilesShowSharedTraffic)
{
    // Fig. 1: lud_cuda and needle are >50% shared-memory accesses.
    for (const char* name : {"lud_cuda", "needle"}) {
        SCOPED_TRACE(name);
        Device dev;
        const WorkloadRun run = runWorkload(dev, findWorkload(name), 0.25);
        ASSERT_FALSE(run.result.faulted());
        const double shared =
            double(run.result.lds + run.result.sts) /
            double(run.result.memInstructions());
        EXPECT_GT(shared, 0.5);
    }
}

TEST(Workloads, GlobalHeavyProfilesShowGlobalTraffic)
{
    for (const char* name : {"bert", "decoding"}) {
        SCOPED_TRACE(name);
        Device dev;
        const WorkloadRun run = runWorkload(dev, findWorkload(name), 0.25);
        ASSERT_FALSE(run.result.faulted());
        const double global =
            double(run.result.ldg + run.result.stg) /
            double(run.result.memInstructions());
        EXPECT_GT(global, 0.9);
    }
}

TEST(Workloads, LocalProfilesShowLocalTraffic)
{
    Device dev;
    const WorkloadRun run =
        runWorkload(dev, findWorkload("particlefilter_naive"), 0.25);
    ASSERT_FALSE(run.result.faulted());
    EXPECT_GT(run.result.ldl + run.result.stl, 0u);
}

TEST(Workloads, CleanUnderLmi)
{
    // No false positives: every workload runs fault-free under LMI.
    for (const auto& p : workloadSuite()) {
        SCOPED_TRACE(p.name);
        Device dev(makeMechanism(MechanismKind::Lmi));
        const WorkloadRun run = runWorkload(dev, p, 0.125);
        EXPECT_FALSE(run.result.faulted())
            << faultKindName(run.result.faults.empty()
                                 ? FaultKind::SpatialOverflow
                                 : run.result.faults[0].kind)
            << ": " << (run.result.faults.empty()
                            ? ""
                            : run.result.faults[0].detail);
    }
}

TEST(Workloads, CleanUnderBaggyAndGpuShieldAndCuCatch)
{
    for (MechanismKind kind : {MechanismKind::BaggySw,
                               MechanismKind::GpuShield,
                               MechanismKind::CuCatch}) {
        for (const char* name : {"needle", "bert", "lavaMD"}) {
            SCOPED_TRACE(std::string(mechanismKindName(kind)) + "/" + name);
            Device dev(makeMechanism(kind));
            const WorkloadRun run =
                runWorkload(dev, findWorkload(name), 0.125);
            EXPECT_FALSE(run.result.faulted())
                << (run.result.faults.empty()
                        ? ""
                        : run.result.faults[0].detail);
        }
    }
}

TEST(Workloads, ScaleShrinksLaunch)
{
    Device dev1, dev2;
    const WorkloadRun full = runWorkload(dev1, findWorkload("nn"), 1.0);
    const WorkloadRun half = runWorkload(dev2, findWorkload("nn"), 0.5);
    EXPECT_GT(full.result.thread_instructions,
              half.result.thread_instructions);
}

TEST(Workloads, ScatteredProfilesTouchMoreLines)
{
    Device dev1, dev2;
    WorkloadProfile streaming = findWorkload("bert");
    WorkloadProfile scattered = streaming;
    scattered.scattered = true;
    const WorkloadRun a = runWorkload(dev1, streaming, 0.25);
    const WorkloadRun c = runWorkload(dev2, scattered, 0.25);
    // Scattered indexing defeats coalescing: more DRAM traffic.
    EXPECT_GT(c.result.l1_misses + c.result.dram_accesses,
              a.result.l1_misses + a.result.dram_accesses);
}

} // namespace
} // namespace lmi

/**
 * @file
 * Unit tests for the kernel IR and builder.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "ir/builder.hpp"
#include "ir/ir.hpp"

namespace lmi {
namespace {

using namespace ir;

/** A minimal valid kernel: out[tid] = in[tid]. */
IrFunction
copyKernel()
{
    IrFunction f = IrBuilder::makeKernel(
        "copy", {{"in", Type::ptr(4)}, {"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto in = b.param(0);
    auto out = b.param(1);
    auto tid = b.gtid();
    auto src = b.gep(in, tid);
    auto dst = b.gep(out, tid);
    auto v = b.load(src);
    b.store(dst, v);
    b.ret();
    return f;
}

TEST(Ir, TypeProperties)
{
    EXPECT_TRUE(Type::ptr(4).isPtr());
    EXPECT_TRUE(Type::i64().isInt());
    EXPECT_TRUE(Type::f32().isFloat());
    EXPECT_EQ(Type::i32().accessWidth(), 4u);
    EXPECT_EQ(Type::i64().accessWidth(), 8u);
    EXPECT_EQ(Type::ptr(4).accessWidth(), 8u);
    EXPECT_EQ(Type::ptr(4, MemSpace::Shared).space, MemSpace::Shared);
}

TEST(Ir, BuilderProducesVerifiableKernel)
{
    IrFunction f = copyKernel();
    EXPECT_NO_THROW(verify(f));
    EXPECT_EQ(f.blocks.size(), 1u);
    // param, param, gtid, gep, gep, load, store, ret
    EXPECT_EQ(f.blocks[0].insts.size(), 8u);
}

TEST(Ir, ToStringRendersCore)
{
    IrFunction f = copyKernel();
    const std::string s = f.toString();
    EXPECT_NE(s.find("define void @copy"), std::string::npos);
    EXPECT_NE(s.find("gep"), std::string::npos);
    EXPECT_NE(s.find("ptr<4,global>"), std::string::npos);
}

TEST(Ir, VerifyRejectsEmptyFunction)
{
    IrFunction f;
    f.name = "empty";
    EXPECT_THROW(verify(f), FatalError);
}

TEST(Ir, VerifyRejectsMissingTerminator)
{
    IrFunction f = IrBuilder::makeKernel("bad", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    b.constInt(1);
    EXPECT_THROW(verify(f), FatalError);
}

TEST(Ir, VerifyRejectsGepOnNonPointer)
{
    IrFunction f = IrBuilder::makeKernel("bad", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto i = b.constInt(1);
    auto j = b.constInt(2);
    // Force an invalid gep by hand.
    IrInst gep;
    gep.op = IrOp::Gep;
    gep.type = Type::ptr(4);
    gep.ops = {i, j};
    f.values.push_back(gep);
    f.blocks[0].insts.push_back(ValueId(f.values.size() - 1));
    b.ret();
    EXPECT_THROW(verify(f), FatalError);
}

TEST(Ir, VerifyRejectsBadBranchTarget)
{
    IrFunction f = IrBuilder::makeKernel("bad", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    IrInst j;
    j.op = IrOp::Jump;
    j.type = Type::voidTy();
    j.tbb = 42;
    f.values.push_back(j);
    f.blocks[0].insts.push_back(ValueId(f.values.size() - 1));
    EXPECT_THROW(verify(f), FatalError);
}

TEST(Ir, PhiLeadsBlock)
{
    IrFunction f = IrBuilder::makeKernel("loop", {{"n", Type::i64()}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto header = b.block("header");
    auto exit = b.block("exit");

    b.setInsertPoint(entry);
    auto zero = b.constInt(0);
    auto n = b.param(0);
    b.jump(header);

    b.setInsertPoint(header);
    auto one = b.constInt(1); // emitted before the phi textually
    auto i = b.phi(Type::i64(), {{zero, entry}});
    auto next = b.iadd(i, one);
    f.inst(i).ops.push_back(next);
    f.inst(i).phi_blocks.push_back(header);
    auto cond = b.icmp(CmpOp::LT, next, n);
    b.br(cond, header, exit);

    b.setInsertPoint(exit);
    b.ret();

    EXPECT_NO_THROW(verify(f));
    EXPECT_EQ(f.inst(f.blocks[header].insts[0]).op, IrOp::Phi);
}

TEST(Ir, SharedBufferDeclared)
{
    IrFunction f = IrBuilder::makeKernel("sh", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto p = b.sharedBuffer("tile", 1024, 4);
    EXPECT_EQ(f.inst(p).type.space, MemSpace::Shared);
    b.ret();
    EXPECT_NO_THROW(verify(f));
    ASSERT_EQ(f.shared_buffers.size(), 1u);
    EXPECT_EQ(f.shared_buffers[0].second, 1024u);
}

TEST(Ir, ModuleFind)
{
    IrModule m;
    m.functions.push_back(copyKernel());
    EXPECT_NE(m.find("copy"), nullptr);
    EXPECT_EQ(m.find("nope"), nullptr);
}

} // namespace
} // namespace lmi

/**
 * @file
 * Unit tests for the ISA definition and the 128-bit microcode codec
 * (paper §VI-B, Fig. 9).
 */

#include <gtest/gtest.h>

#include "arch/isa.hpp"
#include "arch/microcode.hpp"
#include "common/logging.hpp"

namespace lmi {
namespace {

TEST(Isa, OpcodeClassification)
{
    EXPECT_TRUE(isIntAlu(Opcode::IADD));
    EXPECT_TRUE(isIntAlu(Opcode::MOV));
    EXPECT_TRUE(isIntAlu(Opcode::ISETP));
    EXPECT_FALSE(isIntAlu(Opcode::FADD));
    EXPECT_TRUE(isFpAlu(Opcode::FFMA));
    EXPECT_TRUE(isMemory(Opcode::LDG));
    EXPECT_TRUE(isMemory(Opcode::STL));
    EXPECT_FALSE(isMemory(Opcode::LDC)); // constant bank, not data memory
    EXPECT_TRUE(isLoad(Opcode::LDS));
    EXPECT_TRUE(isStore(Opcode::STS));
    EXPECT_FALSE(isLoad(Opcode::STG));
}

TEST(Isa, MemSpaceOfOpcodes)
{
    EXPECT_EQ(memSpaceOf(Opcode::LDG), MemSpace::Global);
    EXPECT_EQ(memSpaceOf(Opcode::STG), MemSpace::Global);
    EXPECT_EQ(memSpaceOf(Opcode::LDS), MemSpace::Shared);
    EXPECT_EQ(memSpaceOf(Opcode::LDL), MemSpace::Local);
    EXPECT_EQ(memSpaceOf(Opcode::LDC), MemSpace::Constant);
}

TEST(Isa, DisassemblyShowsHints)
{
    Instruction inst;
    inst.op = Opcode::IADD;
    inst.dst = 4;
    inst.src[0] = Operand::reg(2);
    inst.src[1] = Operand::imm(0x10);
    inst.hints = {true, 0};
    const std::string s = inst.toString();
    EXPECT_NE(s.find("IADD"), std::string::npos);
    EXPECT_NE(s.find("[A,S=0]"), std::string::npos);
}

TEST(Isa, ValidateRejectsBadBranch)
{
    Program prog;
    prog.name = "bad";
    Instruction bra;
    bra.op = Opcode::BRA;
    bra.branch_target = 99;
    prog.code.push_back(bra);
    Instruction exit;
    exit.op = Opcode::EXIT;
    prog.code.push_back(exit);
    EXPECT_THROW(prog.validate(), FatalError);
}

TEST(Isa, ValidateRejectsHintOnFpOp)
{
    Program prog;
    prog.name = "bad_hint";
    Instruction f;
    f.op = Opcode::FADD;
    f.dst = 1;
    f.src[0] = Operand::reg(2);
    f.src[1] = Operand::reg(3);
    f.hints = {true, 0};
    prog.code.push_back(f);
    Instruction exit;
    exit.op = Opcode::EXIT;
    prog.code.push_back(exit);
    EXPECT_THROW(prog.validate(), FatalError);
}

TEST(Isa, ValidateRequiresTrailingExit)
{
    Program prog;
    prog.name = "no_exit";
    Instruction nop;
    nop.op = Opcode::NOP;
    prog.code.push_back(nop);
    EXPECT_THROW(prog.validate(), FatalError);
}

TEST(Microcode, HintBitsLandAtPaperPositions)
{
    Instruction inst;
    inst.op = Opcode::IADD;
    inst.dst = 4;
    inst.src[0] = Operand::reg(2);
    inst.src[1] = Operand::reg(3);
    inst.hints = {true, 1};

    const Microcode mc = packMicrocode(inst);
    EXPECT_EQ((mc.lo >> 28) & 1, 1u) << "A bit must be bit 28";
    EXPECT_EQ((mc.lo >> 27) & 1, 1u) << "S bit must be bit 27";
    EXPECT_TRUE(mc.activationBit());
    EXPECT_TRUE(mc.selectionBit());

    inst.hints = {false, 0};
    const Microcode mc2 = packMicrocode(inst);
    EXPECT_EQ((mc2.lo >> 28) & 1, 0u);
    EXPECT_EQ((mc2.lo >> 27) & 1, 0u);
}

TEST(Microcode, RoundTripArithmetic)
{
    Instruction inst;
    inst.op = Opcode::IMAD;
    inst.dst = 7;
    inst.src[0] = Operand::reg(1);
    inst.src[1] = Operand::reg(2);
    inst.src[2] = Operand::reg(3);
    inst.hints = {true, 0};

    const Instruction back = unpackMicrocode(packMicrocode(inst));
    EXPECT_EQ(back.op, inst.op);
    EXPECT_EQ(back.dst, inst.dst);
    for (unsigned i = 0; i < kMaxSrcs; ++i) {
        EXPECT_EQ(back.src[i].kind, inst.src[i].kind);
        EXPECT_EQ(back.src[i].value, inst.src[i].value);
    }
    EXPECT_EQ(back.hints.active, inst.hints.active);
    EXPECT_EQ(back.hints.pointer_operand, inst.hints.pointer_operand);
}

TEST(Microcode, RoundTripMemoryWithOffset)
{
    Instruction inst;
    inst.op = Opcode::LDG;
    inst.dst = 8;
    inst.src[0] = Operand::reg(4);
    inst.imm_offset = -0x40;
    inst.width = 8;

    const Instruction back = unpackMicrocode(packMicrocode(inst));
    EXPECT_EQ(back.op, Opcode::LDG);
    EXPECT_EQ(back.imm_offset, -0x40);
    EXPECT_EQ(back.width, 8);
}

TEST(Microcode, RoundTripImmediateAndCBank)
{
    Instruction inst;
    inst.op = Opcode::MOV;
    inst.dst = 1;
    inst.src[0] = Operand::cbank(0x28); // Fig. 7's stack-pointer load
    const Instruction back = unpackMicrocode(packMicrocode(inst));
    EXPECT_EQ(back.src[0].kind, Operand::Kind::CBank);
    EXPECT_EQ(back.src[0].value, 0x28u);

    Instruction imm;
    imm.op = Opcode::IADD;
    imm.dst = 2;
    imm.src[0] = Operand::reg(2);
    imm.src[1] = Operand::imm(0xDEADBEEF);
    const Instruction back2 = unpackMicrocode(packMicrocode(imm));
    EXPECT_EQ(back2.src[1].value, 0xDEADBEEFu);
}

TEST(Microcode, RoundTripBranchAndGuard)
{
    Instruction inst;
    inst.op = Opcode::BRA;
    inst.branch_target = 1234;
    inst.guard_pred = 3;
    inst.guard_neg = true;
    const Instruction back = unpackMicrocode(packMicrocode(inst));
    EXPECT_EQ(back.branch_target, 1234);
    EXPECT_EQ(back.guard_pred, 3);
    EXPECT_TRUE(back.guard_neg);
}

TEST(Microcode, RoundTripSpecialReg)
{
    Instruction inst;
    inst.op = Opcode::S2R;
    inst.dst = 0;
    inst.src[0] = Operand::special(SpecialReg::CtaIdX);
    const Instruction back = unpackMicrocode(packMicrocode(inst));
    EXPECT_EQ(back.src[0].kind, Operand::Kind::Special);
    EXPECT_EQ(SpecialReg(back.src[0].value), SpecialReg::CtaIdX);
}

TEST(Microcode, RejectsUnencodable)
{
    // Two wide immediates cannot share the single 32-bit slot.
    Instruction inst;
    inst.op = Opcode::IMAD;
    inst.dst = 1;
    inst.src[0] = Operand::reg(1);
    inst.src[1] = Operand::imm(0x100000);
    inst.src[2] = Operand::imm(0x200000);
    EXPECT_FALSE(isEncodable(inst));
    EXPECT_THROW(packMicrocode(inst), FatalError);

    // 64-bit immediates do not fit either.
    Instruction wide;
    wide.op = Opcode::MOV;
    wide.dst = 1;
    wide.src[0] = Operand::imm(0x1'0000'0000ull);
    EXPECT_FALSE(isEncodable(wide));
}

TEST(Microcode, ToStringMarksHints)
{
    Instruction inst;
    inst.op = Opcode::IADD;
    inst.dst = 1;
    inst.src[0] = Operand::reg(1);
    inst.src[1] = Operand::imm(4);
    inst.hints = {true, 0};
    const std::string s = microcodeToString(packMicrocode(inst));
    EXPECT_NE(s.find("A=1"), std::string::npos);
    EXPECT_NE(s.find("bit 28"), std::string::npos);
}

// Round-trip every integer opcode through the codec.
class MicrocodeOpcodes : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(MicrocodeOpcodes, RoundTripsOpcode)
{
    Instruction inst;
    inst.op = GetParam();
    inst.dst = 5;
    inst.src[0] = Operand::reg(6);
    if (inst.op == Opcode::BRA) {
        inst.src[0] = Operand::none();
        inst.branch_target = 3;
    }
    const Instruction back = unpackMicrocode(packMicrocode(inst));
    EXPECT_EQ(back.op, inst.op);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, MicrocodeOpcodes,
    ::testing::Values(Opcode::IADD, Opcode::IADD3, Opcode::ISUB, Opcode::IMUL,
                      Opcode::IMAD, Opcode::SHL, Opcode::SHR, Opcode::LOP_AND,
                      Opcode::LOP_XOR, Opcode::MOV, Opcode::ISETP,
                      Opcode::FADD, Opcode::FMUL, Opcode::FFMA, Opcode::LDG,
                      Opcode::STG, Opcode::LDS, Opcode::STS, Opcode::LDL,
                      Opcode::STL, Opcode::LDC, Opcode::BRA, Opcode::BAR,
                      Opcode::EXIT, Opcode::S2R, Opcode::MALLOC, Opcode::FREE,
                      Opcode::NOP));

} // namespace
} // namespace lmi

/**
 * @file
 * Tests for the barrier-aware static race analyzer
 * (analysis/race_analysis.hpp) and the dynamic race sanitizer
 * (sim/race_sanitizer.hpp): verdicts on hand-built fixtures, the
 * clean/seeded workload suite sweep, and the sanitizer's conflict rule
 * exercised both directly and through full simulated launches.
 */

#include <gtest/gtest.h>

#include "analysis/race_analysis.hpp"
#include "compiler/codegen.hpp"
#include "ir/builder.hpp"
#include "sim/device.hpp"
#include "sim/race_sanitizer.hpp"
#include "workloads/workloads.hpp"

namespace lmi {
namespace {

using namespace ir;
using analysis::RaceAnalysisOptions;
using analysis::RaceReport;
using analysis::RaceVerdict;

IrModule
module(IrFunction f)
{
    IrModule m;
    m.functions.push_back(std::move(f));
    return m;
}

RaceReport
analyze(const IrFunction& f, unsigned block_threads = 64,
        unsigned grid_blocks = 2)
{
    RaceAnalysisOptions opts;
    opts.block_threads = block_threads;
    opts.grid_blocks = grid_blocks;
    return analysis::analyzeRaces(f, opts);
}

// ---------------------------------------------------------------------
// Static analyzer: fixtures.
// ---------------------------------------------------------------------

TEST(RaceAnalysis, TidIndexedStoresAreProvenDisjoint)
{
    IrFunction f = IrBuilder::makeKernel(
        "disjoint", {{"in", Type::ptr(4)}, {"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto t = b.gtid();
    auto v = b.load(b.gep(b.param(0), t));
    b.store(b.gep(b.param(1), t), v);
    b.ret();

    const RaceReport r = analyze(f);
    EXPECT_EQ(r.provenRacy(), 0u);
    EXPECT_EQ(r.unknown(), 0u);
    EXPECT_GT(r.provenDisjoint(), 0u);
    EXPECT_TRUE(r.divergent_barriers.empty());
    EXPECT_TRUE(r.diagnostics.empty());
}

TEST(RaceAnalysis, BroadcastStoreIsProvenRacy)
{
    // Every thread stores to out[0]: a definite same-address witness.
    IrFunction f = IrBuilder::makeKernel("bcast", {{"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto t = b.tid();
    b.store(b.gep(b.param(0), b.constInt(0)), t);
    b.ret();

    const RaceReport r = analyze(f);
    EXPECT_GE(r.provenRacy(), 1u);
    EXPECT_FALSE(r.diagnostics.empty());
}

TEST(RaceAnalysis, NeighborExchangeNeedsTheBarrier)
{
    // tile[t] = in[t]; (barrier?); out[t] = tile[t + 1]. Without the
    // barrier, thread t's load collides with thread t+1's store — a
    // definite witness one thread-delta away. With it, the two accesses
    // sit in different barrier epochs and cannot happen in parallel.
    auto build = [](bool with_barrier) {
        IrFunction f = IrBuilder::makeKernel(
            "exch", {{"in", Type::ptr(4)}, {"out", Type::ptr(4)}});
        IrBuilder b(f);
        b.setInsertPoint(b.block("entry"));
        auto tile = b.sharedBuffer("tile", 65 * 4, 4);
        auto t = b.tid();
        auto g = b.gtid();
        b.store(b.gep(tile, t), b.load(b.gep(b.param(0), g)));
        if (with_barrier)
            b.barrier();
        auto n1 = b.iadd(t, b.constInt(1));
        b.store(b.gep(b.param(1), g), b.load(b.gep(tile, n1)));
        b.ret();
        return f;
    };

    const RaceReport racy = analyze(build(false));
    EXPECT_GE(racy.provenRacy(), 1u);

    const RaceReport clean = analyze(build(true));
    EXPECT_EQ(clean.provenRacy(), 0u);
    EXPECT_EQ(clean.unknown(), 0u);
}

TEST(RaceAnalysis, BarrierUnderTidDependentControlIsDivergent)
{
    IrFunction f = IrBuilder::makeKernel("divbar", {{"out", Type::ptr(4)}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto bar = b.block("bar");
    auto done = b.block("done");

    b.setInsertPoint(entry);
    auto t = b.tid();
    auto even = b.icmp(CmpOp::EQ, b.iand(t, b.constInt(1)), b.constInt(0));
    b.br(even, bar, done);
    b.setInsertPoint(bar);
    b.barrier();
    b.jump(done);
    b.setInsertPoint(done);
    b.store(b.gep(b.param(0), t), t);
    b.ret();

    const RaceReport r = analyze(f);
    EXPECT_EQ(r.divergent_barriers.size(), 1u);
    EXPECT_FALSE(r.diagnostics.empty());
}

TEST(RaceAnalysis, DataDependentIndexIsUnknownNotRacy)
{
    // out[in[t]] = t: the index is a loaded value the analyzer cannot
    // bound, so the store pair must stay Unknown (sanitizer territory),
    // never ProvenRacy (no definite witness) and never ProvenDisjoint.
    IrFunction f = IrBuilder::makeKernel(
        "gather", {{"in", Type::ptr(4)}, {"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto t = b.gtid();
    auto idx = b.load(b.gep(b.param(0), t));
    b.store(b.gep(b.param(1), idx), t);
    b.ret();

    const RaceReport r = analyze(f);
    EXPECT_EQ(r.provenRacy(), 0u);
    EXPECT_GE(r.unknown(), 1u);
}

TEST(RaceAnalysis, DistinctParamsDoNotAliasByDefault)
{
    // in[t+1] load vs out[t] store would collide if in == out; the
    // GPUVerify-style array abstraction assumes they do not.
    IrFunction f = IrBuilder::makeKernel(
        "shift", {{"in", Type::ptr(4)}, {"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto t = b.gtid();
    auto v = b.load(b.gep(b.param(0), b.iadd(t, b.constInt(1))));
    b.store(b.gep(b.param(1), t), v);
    b.ret();

    const RaceReport lax = analyze(f);
    EXPECT_EQ(lax.provenRacy(), 0u);
    EXPECT_EQ(lax.unknown(), 0u);

    RaceAnalysisOptions strict;
    strict.block_threads = 64;
    strict.grid_blocks = 2;
    strict.assume_param_noalias = false;
    const RaceReport r = analysis::analyzeRaces(f, strict);
    EXPECT_GE(r.unknown(), 1u) << "a maybe-aliasing cross-param pair "
                                  "must not be proven disjoint";
}

// ---------------------------------------------------------------------
// Static analyzer: the workload suite is the acceptance gate.
// ---------------------------------------------------------------------

TEST(RaceAnalysis, CleanWorkloadSuiteIsFullyProvenDisjoint)
{
    for (const WorkloadProfile& p : workloadSuite()) {
        const IrModule m = buildWorkloadKernel(p);
        const IrFunction flat = inlineCalls(m, *m.find(p.name));
        RaceAnalysisOptions opts;
        opts.block_threads = p.block_threads;
        opts.grid_blocks = p.grid_blocks;
        const RaceReport r = analysis::analyzeRaces(flat, opts);
        EXPECT_EQ(r.provenRacy(), 0u) << p.name;
        EXPECT_EQ(r.unknown(), 0u) << p.name;
        EXPECT_TRUE(r.divergent_barriers.empty()) << p.name;
    }
}

TEST(RaceAnalysis, EverySeededVariantIsFlagged)
{
    for (const SeededWorkload& sw : raceSeededVariants()) {
        const IrModule m = buildWorkloadKernel(sw.profile, sw.seed);
        const IrFunction flat = inlineCalls(m, *m.find(sw.profile.name));
        RaceAnalysisOptions opts;
        opts.block_threads = sw.profile.block_threads;
        opts.grid_blocks = sw.profile.grid_blocks;
        const RaceReport r = analysis::analyzeRaces(flat, opts);
        EXPECT_TRUE(r.provenRacy() > 0 || !r.divergent_barriers.empty())
            << sw.name;
    }
}

// ---------------------------------------------------------------------
// Dynamic sanitizer: conflict rule, exercised directly.
// ---------------------------------------------------------------------

TEST(RaceSanitizer, SameWarpAccessesNeverConflict)
{
    RaceSanitizer s;
    s.onAccess(MemSpace::Shared, 0, 0, 0, 10, 0x40, 4, true);
    s.onAccess(MemSpace::Shared, 0, 0, 1, 11, 0x40, 4, true);
    s.onAccess(MemSpace::Shared, 0, 0, 2, 12, 0x40, 4, false);
    EXPECT_EQ(s.conflictCount(), 0u);
}

TEST(RaceSanitizer, CrossWarpSameEpochStoreConflicts)
{
    RaceSanitizer s;
    s.onAccess(MemSpace::Shared, 0, 0, 0, 10, 0x40, 4, true);
    s.onAccess(MemSpace::Shared, 0, 1, 32, 11, 0x40, 4, true);
    EXPECT_EQ(s.conflictCount(), 1u);
    ASSERT_EQ(s.reports().size(), 1u);
    EXPECT_EQ(s.reports()[0].warp, 1u);
    EXPECT_EQ(s.reports()[0].other_warp, 0u);
    EXPECT_TRUE(s.reports()[0].is_store);
}

TEST(RaceSanitizer, LoadLoadNeverConflicts)
{
    RaceSanitizer s;
    s.onAccess(MemSpace::Global, 0, 0, 0, 10, 0x100, 4, false);
    s.onAccess(MemSpace::Global, 1, 0, 64, 11, 0x100, 4, false);
    EXPECT_EQ(s.conflictCount(), 0u);
}

TEST(RaceSanitizer, BarrierEpochOrdersCrossWarpAccesses)
{
    RaceSanitizer s;
    s.onAccess(MemSpace::Shared, 0, 0, 0, 10, 0x40, 4, true);
    s.onBarrierRelease(0);
    s.onAccess(MemSpace::Shared, 0, 1, 32, 11, 0x40, 4, false);
    EXPECT_EQ(s.conflictCount(), 0u);

    // A second store in the *new* epoch conflicts with the epoch-1 load
    // from the other warp.
    s.onAccess(MemSpace::Shared, 0, 0, 0, 12, 0x40, 4, true);
    EXPECT_EQ(s.conflictCount(), 1u);
}

TEST(RaceSanitizer, CrossBlockGlobalConflictIgnoresBarriers)
{
    RaceSanitizer s;
    s.onAccess(MemSpace::Global, 0, 0, 0, 10, 0x200, 4, true);
    s.onBarrierRelease(0);
    s.onBarrierRelease(1);
    s.onAccess(MemSpace::Global, 1, 0, 64, 11, 0x200, 4, true);
    EXPECT_EQ(s.conflictCount(), 1u);
}

TEST(RaceSanitizer, DeviceAllocForgetsRecycledShadow)
{
    RaceSanitizer s;
    s.onAccess(MemSpace::Global, 0, 0, 0, 10, 0x300, 4, true);
    s.onDeviceAlloc(0x300, 64);
    s.onAccess(MemSpace::Global, 1, 0, 64, 11, 0x300, 4, true);
    EXPECT_EQ(s.conflictCount(), 0u);
}

TEST(RaceSanitizer, BlockRetireDropsSharedShadowAndEpoch)
{
    RaceSanitizer s;
    s.onAccess(MemSpace::Shared, 0, 0, 0, 10, 0x40, 4, true);
    EXPECT_EQ(s.wordsTracked(), 1u);
    s.onBlockRetire(0);
    EXPECT_EQ(s.wordsTracked(), 0u);
    // A new resident block with the same id starts clean.
    s.onAccess(MemSpace::Shared, 0, 1, 32, 11, 0x40, 4, true);
    EXPECT_EQ(s.conflictCount(), 0u);
}

TEST(RaceSanitizer, WideAccessChecksEveryWord)
{
    RaceSanitizer s;
    s.onAccess(MemSpace::Global, 0, 0, 0, 10, 0x400, 8, true);
    s.onAccess(MemSpace::Global, 0, 1, 32, 11, 0x404, 4, true);
    EXPECT_EQ(s.conflictCount(), 1u);
}

// ---------------------------------------------------------------------
// Dynamic sanitizer: full launches through the simulator.
// ---------------------------------------------------------------------

TEST(RaceSanitizer, CleanLaunchHasNoConflictsAndIdenticalOutput)
{
    // tile[t] = in[t]; barrier; out[t] = tile[63 - t], twice: once
    // plain, once sanitized. Outputs and timing must match exactly and
    // the sanitizer must stay silent (cross-warp reads are ordered by
    // the barrier epoch).
    auto build = [] {
        IrFunction f = IrBuilder::makeKernel(
            "rev", {{"in", Type::ptr(4)}, {"out", Type::ptr(4)}});
        IrBuilder b(f);
        b.setInsertPoint(b.block("entry"));
        auto tile = b.sharedBuffer("tile", 64 * 4, 4);
        auto t = b.tid();
        b.store(b.gep(tile, t), b.load(b.gep(b.param(0), t)));
        b.barrier();
        b.store(b.gep(b.param(1), t),
                b.load(b.gep(tile, b.isub(b.constInt(63), t))));
        b.ret();
        return module(std::move(f));
    };

    const unsigned n = 64;
    auto run = [&](RaceSanitizer* sanitizer) {
        Device dev;
        const uint64_t in = dev.cudaMalloc(n * 4);
        const uint64_t out = dev.cudaMalloc(n * 4);
        for (unsigned i = 0; i < n; ++i)
            dev.poke32(in + 4 * i, 100 + i);
        const CompiledKernel k = dev.compile(build(), "rev");
        LaunchOptions opts;
        opts.sanitizer = sanitizer;
        const RunResult r = dev.launch(k, 1, n, {in, out}, opts);
        std::vector<uint32_t> result;
        for (unsigned i = 0; i < n; ++i)
            result.push_back(dev.peek32(out + 4 * i));
        return std::make_pair(r, result);
    };

    RaceSanitizer sanitizer;
    const auto plain = run(nullptr);
    const auto watched = run(&sanitizer);
    EXPECT_FALSE(plain.first.faulted());
    EXPECT_FALSE(watched.first.faulted());
    EXPECT_EQ(plain.second, watched.second);
    EXPECT_EQ(plain.first.cycles, watched.first.cycles);
    EXPECT_EQ(sanitizer.conflictCount(), 0u);
    EXPECT_GT(sanitizer.wordsTracked(), 0u);
}

TEST(RaceSanitizer, BroadcastLaunchReportsCrossWarpConflicts)
{
    IrFunction f = IrBuilder::makeKernel("bcast", {{"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    b.store(b.gep(b.param(0), b.constInt(0)), b.tid());
    b.ret();

    Device dev;
    const uint64_t out = dev.cudaMalloc(256);
    const CompiledKernel k = dev.compile(module(std::move(f)), "bcast");
    RaceSanitizer sanitizer;
    LaunchOptions opts;
    opts.sanitizer = &sanitizer;
    const RunResult r = dev.launch(k, 1, 64, {out}, opts);
    EXPECT_FALSE(r.faulted());
    EXPECT_GT(sanitizer.conflictCount(), 0u);
    ASSERT_FALSE(sanitizer.reports().empty());
    EXPECT_EQ(sanitizer.reports()[0].space, MemSpace::Global);
}

} // namespace
} // namespace lmi

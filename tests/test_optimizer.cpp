/**
 * @file
 * Optimizer tests: constant folding, algebraic identities, dead code
 * elimination, semantic preservation, and interaction with the LMI
 * pass (optimized kernels still compile, hint, and detect).
 */

#include <gtest/gtest.h>

#include "compiler/optimizer.hpp"
#include "ir/builder.hpp"
#include "ir/parser.hpp"
#include "mechanisms/registry.hpp"
#include "sim/device.hpp"
#include "workloads/workloads.hpp"

namespace lmi {
namespace {

using namespace ir;

unsigned
countOps(const IrFunction& f, IrOp op)
{
    unsigned n = 0;
    for (BlockId b = 0; b < f.blocks.size(); ++b)
        for (ValueId v : f.blocks[b].insts)
            n += f.inst(v).op == op;
    return n;
}

unsigned
liveInstructions(const IrFunction& f)
{
    unsigned n = 0;
    for (BlockId b = 0; b < f.blocks.size(); ++b)
        n += unsigned(f.blocks[b].insts.size());
    return n;
}

TEST(Optimizer, FoldsConstantChains)
{
    IrFunction f = IrBuilder::makeKernel("fold", {{"out", Type::ptr(8)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto x = b.iadd(b.constInt(2), b.constInt(3));     // 5
    auto y = b.imul(x, b.constInt(4));                 // 20
    auto z = b.isub(y, b.constInt(1));                 // 19
    b.store(b.gep(b.param(0), b.constInt(0)), z);
    b.ret();

    const OptimizeStats stats = optimizeFunction(f);
    EXPECT_GE(stats.folded, 3u);
    // The arithmetic collapsed into constants.
    EXPECT_EQ(countOps(f, IrOp::IAdd), 0u);
    EXPECT_EQ(countOps(f, IrOp::IMul), 0u);
    EXPECT_EQ(countOps(f, IrOp::ISub), 0u);

    // And it still computes 19.
    Device dev;
    const uint64_t out = dev.cudaMalloc(256);
    IrModule m;
    m.functions.push_back(std::move(f));
    const CompiledKernel k = dev.compile(m, "fold");
    ASSERT_FALSE(dev.launch(k, 1, 1, {out}).faulted());
    EXPECT_EQ(dev.peek64(out), 19u);
}

TEST(Optimizer, AppliesIdentities)
{
    IrFunction f = IrBuilder::makeKernel("ident", {{"out", Type::ptr(8)},
                                                   {"v", Type::i64()}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto v = b.param(1);
    auto a = b.iadd(v, b.constInt(0));  // v
    auto c = b.imul(a, b.constInt(1));  // v
    auto d = b.ishl(c, b.constInt(0));  // v
    auto e = b.imul(d, b.constInt(0));  // 0
    auto g = b.iadd(v, e);              // v (0 folded away)
    b.store(b.gep(b.param(0), b.constInt(0)), g);
    b.ret();
    const OptimizeStats stats = optimizeFunction(f);
    EXPECT_GE(stats.simplified, 3u);

    Device dev;
    const uint64_t out = dev.cudaMalloc(256);
    IrModule m;
    m.functions.push_back(std::move(f));
    const CompiledKernel k = dev.compile(m, "ident");
    ASSERT_FALSE(dev.launch(k, 1, 1, {out, 12345}).faulted());
    EXPECT_EQ(dev.peek64(out), 12345u);
}

TEST(Optimizer, RemovesDeadCode)
{
    IrFunction f = IrBuilder::makeKernel("dead", {{"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto t = b.gtid();
    // Dead chain: never stored.
    auto d1 = b.imul(t, b.constInt(7));
    b.iadd(d1, b.constInt(1));
    // Dead pointer math too.
    b.gep(b.param(0), t);
    // Live store.
    b.store(b.gep(b.param(0), t), t);
    b.ret();

    const unsigned before = liveInstructions(f);
    const OptimizeStats stats = optimizeFunction(f);
    EXPECT_GE(stats.removed, 3u);
    EXPECT_LT(liveInstructions(f), before);
    EXPECT_EQ(countOps(f, IrOp::Store), 1u); // side effects survive
}

TEST(Optimizer, KeepsSideEffects)
{
    IrFunction f = IrBuilder::makeKernel("fx", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto p = b.malloc_(b.constInt(256), 4); // allocation is observable
    b.free_(p);
    b.barrier();
    b.ret();
    optimizeFunction(f);
    EXPECT_EQ(countOps(f, IrOp::Malloc), 1u);
    EXPECT_EQ(countOps(f, IrOp::Free), 1u);
    EXPECT_EQ(countOps(f, IrOp::Barrier), 1u);
}

TEST(Optimizer, PreservesWorkloadSemantics)
{
    // Optimize a workload kernel and check it produces identical output.
    WorkloadProfile p = findWorkload("lavaMD");
    p.grid_blocks = 4;
    p.block_threads = 64;

    auto run = [&](bool optimize) {
        Device dev;
        IrModule m = buildWorkloadKernel(p);
        if (optimize)
            optimizeModule(m);
        const uint64_t in = dev.cudaMalloc(p.elements() * 4 + 64);
        const uint64_t out = dev.cudaMalloc(p.elements() * 4 + 64);
        for (unsigned i = 0; i < p.elements(); ++i)
            dev.poke32(in + 4 * i, 3 * i + 1);
        const CompiledKernel k = dev.compile(m, p.name);
        const RunResult r = dev.launch(k, p.grid_blocks, p.block_threads,
                                       {in, out, p.elements()});
        EXPECT_FALSE(r.faulted());
        std::vector<uint32_t> values(p.elements());
        for (unsigned i = 0; i < p.elements(); ++i)
            values[i] = dev.peek32(out + 4 * i);
        return values;
    };
    EXPECT_EQ(run(false), run(true));
}

TEST(Optimizer, OptimizedKernelStillDetectsUnderLmi)
{
    // Folding must not erase the violation or its detection.
    IrFunction f = IrBuilder::makeKernel("oob", {{"buf", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto idx = b.iadd(b.constInt(60), b.constInt(4)); // folds to 64
    b.store(b.gep(b.param(0), idx), b.constInt(1, Type::i32()));
    b.ret();
    IrModule m;
    m.functions.push_back(std::move(f));
    optimizeModule(m);

    Device dev(makeMechanism(MechanismKind::Lmi));
    const uint64_t buf = dev.cudaMalloc(256);
    const CompiledKernel k = dev.compile(m, "oob");
    const RunResult r = dev.launch(k, 1, 1, {buf});
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.faults[0].kind, FaultKind::SpatialOverflow);
}

TEST(Optimizer, IdempotentAtFixpoint)
{
    IrModule m = buildWorkloadKernel(findWorkload("hotspot"));
    optimizeModule(m);
    const std::string once = printModule(m);
    const OptimizeStats again = optimizeModule(m);
    EXPECT_EQ(again.total(), 0u);
    EXPECT_EQ(printModule(m), once);
}

} // namespace
} // namespace lmi

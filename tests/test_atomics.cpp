/**
 * @file
 * Scoped atomics and fences across the stack: textual-IR round trips
 * and parse errors, verifier rejections of ill-formed orderings,
 * microcode round trips of the atomic opcode family, codegen lowering,
 * end-to-end simulator semantics (including byte-identity across
 * sim_threads), the race sanitizer's scoped-atomic exemption, the
 * static race analyzer's Synchronized downgrade, and Cfg postdominator
 * behaviour for blocks whose terminators sit next to fences/atomics.
 */

#include <gtest/gtest.h>

#include "analysis/cfg.hpp"
#include "analysis/race_analysis.hpp"
#include "analysis/verify.hpp"
#include "arch/microcode.hpp"
#include "common/logging.hpp"
#include "compiler/codegen.hpp"
#include "ir/builder.hpp"
#include "ir/parser.hpp"
#include "sim/device.hpp"
#include "sim/race_sanitizer.hpp"

namespace lmi {
namespace {

using namespace ir;

IrModule
module(IrFunction f)
{
    IrModule m;
    m.functions.push_back(std::move(f));
    return m;
}

bool
hasDiag(const std::vector<analysis::Diagnostic>& diags,
        const std::string& needle)
{
    for (const analysis::Diagnostic& d : diags)
        if (d.message.find(needle) != std::string::npos)
            return true;
    return false;
}

/** Kernel exercising every atomic flavour on one i32 buffer. */
IrFunction
atomicZoo()
{
    IrFunction f =
        IrBuilder::makeKernel("zoo", {{"buf", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto buf = b.param(0);
    auto one = b.constInt(1);
    b.atomicRmw(AtomicOp::Add, buf, one, MemOrder::Relaxed,
                MemScope::Gpu);
    b.atomicRmw(AtomicOp::Max, b.gep(buf, one), b.gtid(),
                MemOrder::AcqRel, MemScope::Sys);
    b.atomicCas(b.gep(buf, b.constInt(2)), b.constInt(0), one,
                MemOrder::AcqRel, MemScope::Gpu);
    auto v = b.atomicLoad(b.gep(buf, b.constInt(3)),
                          MemOrder::Acquire, MemScope::Cta);
    b.fence(MemOrder::AcqRel, MemScope::Gpu);
    b.atomicStore(b.gep(buf, b.constInt(4)), v, MemOrder::Release,
                  MemScope::Gpu);
    b.ret();
    return f;
}

// ---------------------------------------------------------------------
// Textual IR.
// ---------------------------------------------------------------------

TEST(AtomicIr, RoundTripsEveryFlavour)
{
    const IrFunction f = atomicZoo();
    const std::string once = f.toString();
    EXPECT_NE(once.find("atomicrmw.add.relaxed.gpu"),
              std::string::npos)
        << once;
    EXPECT_NE(once.find("atomicrmw.max.acqrel.sys"),
              std::string::npos);
    EXPECT_NE(once.find("atomiccas.acqrel.gpu"), std::string::npos);
    EXPECT_NE(once.find("atomicld.acquire.cta"), std::string::npos);
    EXPECT_NE(once.find("fence.acqrel.gpu"), std::string::npos);
    EXPECT_NE(once.find("atomicst.release.gpu"), std::string::npos);
    const IrFunction parsed = parseFunction(once);
    EXPECT_EQ(parsed.toString(), once);
}

TEST(AtomicIr, ParseRejectsMalformedSuffixes)
{
    auto kernel = [](const std::string& body) {
        return "define void @f(ptr<4> %p) {\nentry:\n" + body +
               "\n  ret\n}\n";
    };
    // Unknown RMW operation.
    EXPECT_THROW(
        parseFunction(kernel("  %v:i64 = atomicrmw.bogus.relaxed.gpu "
                             "%p, 1")),
        FatalError);
    // Missing scope component.
    EXPECT_THROW(
        parseFunction(kernel("  %v:i64 = atomicrmw.add.relaxed %p, 1")),
        FatalError);
    // Unknown scope.
    EXPECT_THROW(
        parseFunction(kernel("  fence.acqrel.warp")), FatalError);
    // Bare fence with no ordering.
    EXPECT_THROW(parseFunction(kernel("  fence")), FatalError);
}

// ---------------------------------------------------------------------
// Verifier.
// ---------------------------------------------------------------------

TEST(AtomicVerify, CleanAtomicKernelPasses)
{
    EXPECT_TRUE(analysis::verifyFunction(atomicZoo()).empty());
}

TEST(AtomicVerify, RejectsRelaxedFence)
{
    IrFunction f = IrBuilder::makeKernel("f", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    b.fence(MemOrder::AcqRel, MemScope::Gpu);
    b.ret();
    // Weaken the well-formed fence behind the builder's back.
    for (ValueId v = 0; v < f.values.size(); ++v)
        if (f.inst(v).op == IrOp::Fence)
            f.inst(v).order = MemOrder::Relaxed;
    EXPECT_TRUE(hasDiag(analysis::verifyFunction(f),
                        "fence with relaxed ordering"));
}

TEST(AtomicVerify, RejectsAcquireStoreAndReleaseLoad)
{
    IrFunction f = IrBuilder::makeKernel("f", {{"p", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto p = b.param(0);
    auto v = b.atomicLoad(p, MemOrder::Acquire, MemScope::Gpu);
    b.atomicStore(p, v, MemOrder::Release, MemScope::Gpu);
    b.ret();
    for (ValueId i = 0; i < f.values.size(); ++i) {
        if (f.inst(i).op == IrOp::AtomicLoad)
            f.inst(i).order = MemOrder::Release;
        if (f.inst(i).op == IrOp::AtomicStore)
            f.inst(i).order = MemOrder::Acquire;
    }
    const auto diags = analysis::verifyFunction(f);
    EXPECT_TRUE(hasDiag(diags, "atomicst with an acquire component"));
    EXPECT_TRUE(hasDiag(diags, "atomicld with a release component"));
}

TEST(AtomicVerify, RejectsIsaInternalRmwOps)
{
    for (AtomicOp aop :
         {AtomicOp::Cas, AtomicOp::Ld, AtomicOp::St}) {
        IrFunction f =
            IrBuilder::makeKernel("f", {{"p", Type::ptr(4)}});
        IrBuilder b(f);
        b.setInsertPoint(b.block("entry"));
        b.atomicRmw(AtomicOp::Add, b.param(0), b.constInt(1),
                    MemOrder::Relaxed, MemScope::Gpu);
        b.ret();
        for (ValueId i = 0; i < f.values.size(); ++i)
            if (f.inst(i).op == IrOp::AtomicRmw)
                f.inst(i).aop = aop;
        EXPECT_TRUE(hasDiag(analysis::verifyFunction(f),
                            "ISA-internal operation"))
            << atomicOpName(aop);
    }
}

// ---------------------------------------------------------------------
// Microcode.
// ---------------------------------------------------------------------

TEST(AtomicMicrocode, RoundTripsAtomicFamily)
{
    const struct
    {
        Opcode op;
        AtomicOp aop;
        MemScope scope;
        MemOrder order;
        int16_t offset;
        uint8_t width;
    } cases[] = {
        {Opcode::ATOMG, AtomicOp::Add, MemScope::Gpu,
         MemOrder::Relaxed, 0, 4},
        {Opcode::ATOMG, AtomicOp::Xor, MemScope::Sys,
         MemOrder::AcqRel, -0x80, 8},
        {Opcode::ATOMS, AtomicOp::Max, MemScope::Cta,
         MemOrder::Acquire, 0x40, 4},
        {Opcode::ATOMG, AtomicOp::St, MemScope::Gpu,
         MemOrder::Release, 4, 4},
        {Opcode::ATOMG, AtomicOp::Ld, MemScope::Gpu,
         MemOrder::Acquire, 8, 4},
        {Opcode::CASG, AtomicOp::Cas, MemScope::Gpu,
         MemOrder::AcqRel, 0, 4},
        {Opcode::CASS, AtomicOp::Cas, MemScope::Cta,
         MemOrder::Relaxed, 0, 8},
    };
    for (const auto& c : cases) {
        Instruction inst;
        inst.op = c.op;
        inst.dst = 5;
        inst.src[0] = Operand::reg(2);
        inst.src[1] = Operand::reg(3);
        if (c.op == Opcode::CASG || c.op == Opcode::CASS)
            inst.src[2] = Operand::reg(4);
        inst.aop = c.aop;
        inst.scope = c.scope;
        inst.order = c.order;
        inst.imm_offset = c.offset;
        inst.width = c.width;
        ASSERT_TRUE(isEncodable(inst)) << opcodeName(c.op);

        const Instruction back = unpackMicrocode(packMicrocode(inst));
        EXPECT_EQ(back.op, c.op);
        EXPECT_EQ(back.aop, c.aop) << opcodeName(c.op);
        EXPECT_EQ(back.scope, c.scope);
        EXPECT_EQ(back.order, c.order);
        EXPECT_EQ(back.imm_offset, c.offset);
        EXPECT_EQ(back.width, c.width);
    }
}

TEST(AtomicMicrocode, RoundTripsMembar)
{
    Instruction inst;
    inst.op = Opcode::MEMBAR;
    inst.dst = -1;
    inst.scope = MemScope::Sys;
    inst.order = MemOrder::AcqRel;
    const Instruction back = unpackMicrocode(packMicrocode(inst));
    EXPECT_EQ(back.op, Opcode::MEMBAR);
    EXPECT_EQ(back.scope, MemScope::Sys);
    EXPECT_EQ(back.order, MemOrder::AcqRel);
}

// ---------------------------------------------------------------------
// Codegen.
// ---------------------------------------------------------------------

TEST(AtomicCodegen, LowersToAtomicOpcodeFamily)
{
    const CompiledKernel ck =
        compileKernel(module(atomicZoo()), "zoo", CodegenOptions{});
    unsigned atomg = 0, casg = 0, membar = 0;
    for (const auto& inst : ck.program.code) {
        atomg += inst.op == Opcode::ATOMG;
        casg += inst.op == Opcode::CASG;
        membar += inst.op == Opcode::MEMBAR;
    }
    // add, max, ld, st lower to ATOMG (the ld/st cta/gpu variants
    // included); the CAS to CASG; the fence to MEMBAR.
    EXPECT_GE(atomg, 4u);
    EXPECT_EQ(casg, 1u);
    EXPECT_EQ(membar, 1u);
}

// ---------------------------------------------------------------------
// Simulator semantics.
// ---------------------------------------------------------------------

/** Every thread atomically adds 1 to cell 0 and maxes cell 1 with its
 *  gtid; thread-0-of-device CAS-claims cell 2. */
IrModule
contendKernel()
{
    IrFunction f =
        IrBuilder::makeKernel("contend", {{"buf", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto buf = b.param(0);
    b.atomicRmw(AtomicOp::Add, buf, b.constInt(1), MemOrder::Relaxed,
                MemScope::Gpu);
    b.atomicRmw(AtomicOp::Max, b.gep(buf, b.constInt(1)), b.gtid(),
                MemOrder::Relaxed, MemScope::Gpu);
    b.atomicCas(b.gep(buf, b.constInt(2)), b.constInt(0),
                b.iadd(b.gtid(), b.constInt(1)), MemOrder::AcqRel,
                MemScope::Gpu);
    b.ret();
    return module(std::move(f));
}

TEST(AtomicSim, GlobalContention)
{
    Device dev;
    const unsigned blocks = 4, threads = 64;
    const uint64_t buf = dev.cudaMalloc(64);
    const CompiledKernel k = dev.compile(contendKernel(), "contend");
    const RunResult r = dev.launch(k, blocks, threads, {buf});
    ASSERT_FALSE(r.faulted());
    EXPECT_EQ(dev.peek32(buf), blocks * threads);
    EXPECT_EQ(dev.peek32(buf + 4), blocks * threads - 1);
    // Exactly one CAS won; the winner's gtid+1 is in [1, n].
    const uint32_t winner = dev.peek32(buf + 8);
    EXPECT_GE(winner, 1u);
    EXPECT_LE(winner, blocks * threads);
}

/** Per-block shared counter at cta scope, published per block. */
IrModule
sharedCountKernel()
{
    IrFunction f =
        IrBuilder::makeKernel("shcount", {{"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto cnt = b.sharedBuffer("cnt", 4, 4);
    b.atomicRmw(AtomicOp::Add, cnt, b.constInt(1), MemOrder::Relaxed,
                MemScope::Cta);
    b.barrier();
    auto is0 = b.icmp(CmpOp::EQ, b.tid(), b.constInt(0));
    auto then = b.block("publish");
    auto done = b.block("done");
    b.br(is0, then, done);
    b.setInsertPoint(then);
    b.atomicStore(b.gep(b.param(0), b.ctaid()), b.atomicLoad(cnt),
                  MemOrder::Release, MemScope::Gpu);
    b.jump(done);
    b.setInsertPoint(done);
    b.ret();
    return module(std::move(f));
}

TEST(AtomicSim, SharedCtaCounter)
{
    Device dev;
    const unsigned blocks = 3, threads = 96;
    const uint64_t out = dev.cudaMalloc(blocks * 4);
    const CompiledKernel k = dev.compile(sharedCountKernel(), "shcount");
    const RunResult r = dev.launch(k, blocks, threads, {out});
    ASSERT_FALSE(r.faulted());
    for (unsigned i = 0; i < blocks; ++i)
        EXPECT_EQ(dev.peek32(out + 4 * i), threads) << "block " << i;
}

TEST(AtomicSim, ByteIdenticalAcrossSimThreads)
{
    auto runWith = [](unsigned sim_threads, std::vector<uint32_t>* mem,
                      uint64_t* cycles) {
        Device dev;
        dev.setSimThreads(sim_threads);
        const uint64_t buf = dev.cudaMalloc(64);
        const CompiledKernel k =
            dev.compile(contendKernel(), "contend");
        const RunResult r = dev.launch(k, 4, 64, {buf});
        ASSERT_FALSE(r.faulted());
        *cycles = r.cycles;
        mem->clear();
        for (unsigned i = 0; i < 16; ++i)
            mem->push_back(dev.peek32(buf + 4 * i));
    };
    std::vector<uint32_t> serial, parallel;
    uint64_t serial_cycles = 0, parallel_cycles = 0;
    runWith(1, &serial, &serial_cycles);
    for (unsigned threads : {2u, 4u}) {
        SCOPED_TRACE("sim_threads=" + std::to_string(threads));
        runWith(threads, &parallel, &parallel_cycles);
        EXPECT_EQ(parallel, serial);
        EXPECT_EQ(parallel_cycles, serial_cycles);
    }
}

// ---------------------------------------------------------------------
// Race sanitizer: scoped-atomic exemption.
// ---------------------------------------------------------------------

TEST(AtomicSanitizer, ScopedAtomicPairsDoNotConflict)
{
    RaceSanitizer san;
    // Same-block pair, both atomic at cta scope: synchronizes.
    san.onAccess(MemSpace::Global, /*block=*/0, /*warp=*/0, /*gtid=*/0,
                 /*pc=*/0, 0x1000, 4, /*is_store=*/true,
                 /*is_atomic=*/true, MemScope::Cta);
    san.onAccess(MemSpace::Global, 0, 1, 32, 4, 0x1000, 4, true, true,
                 MemScope::Cta);
    EXPECT_EQ(san.conflictCount(), 0u);
    // Cross-block pair at cta scope: insufficient, a race.
    san.onAccess(MemSpace::Global, 1, 0, 64, 8, 0x1000, 4, true, true,
                 MemScope::Cta);
    EXPECT_EQ(san.conflictCount(), 1u);
}

TEST(AtomicSanitizer, DeviceScopeCoversCrossBlock)
{
    RaceSanitizer san;
    san.onAccess(MemSpace::Global, 0, 0, 0, 0, 0x2000, 4, true, true,
                 MemScope::Gpu);
    san.onAccess(MemSpace::Global, 1, 0, 64, 4, 0x2000, 4, true, true,
                 MemScope::Sys);
    EXPECT_EQ(san.conflictCount(), 0u);
    // Atomic against a plain access still races.
    san.onAccess(MemSpace::Global, 2, 0, 128, 8, 0x2000, 4, true,
                 /*is_atomic=*/false);
    EXPECT_GE(san.conflictCount(), 1u);
}

// ---------------------------------------------------------------------
// Static race analysis: Synchronized downgrade.
// ---------------------------------------------------------------------

TEST(AtomicRaceAnalysis, DeviceScopeAtomicsSynchronize)
{
    IrFunction f =
        IrBuilder::makeKernel("k", {{"buf", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    // Every thread RMWs the same cell: conflicting, but synchronized.
    b.atomicRmw(AtomicOp::Add, b.param(0), b.constInt(1),
                MemOrder::Relaxed, MemScope::Gpu);
    b.ret();
    const analysis::RaceReport r = analysis::analyzeRaces(f);
    EXPECT_EQ(r.provenRacy(), 0u);
    EXPECT_EQ(r.unknown(), 0u);
    EXPECT_GE(r.synchronized(), 1u);
    EXPECT_TRUE(r.diagnostics.empty());
}

TEST(AtomicRaceAnalysis, CtaScopeGlobalAtomicsStillFlagged)
{
    IrFunction f =
        IrBuilder::makeKernel("k", {{"buf", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    // cta scope cannot order cross-block global conflicts.
    b.atomicRmw(AtomicOp::Add, b.param(0), b.constInt(1),
                MemOrder::Relaxed, MemScope::Cta);
    b.ret();
    const analysis::RaceReport r = analysis::analyzeRaces(f);
    EXPECT_EQ(r.synchronized(), 0u);
    EXPECT_GE(r.provenRacy() + r.unknown(), 1u);
}

TEST(AtomicRaceAnalysis, CtaScopeSufficesOnSharedMemory)
{
    IrFunction f = IrBuilder::makeKernel("k", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto cnt = b.sharedBuffer("cnt", 4, 4);
    b.atomicRmw(AtomicOp::Add, cnt, b.constInt(1), MemOrder::Relaxed,
                MemScope::Cta);
    b.ret();
    const analysis::RaceReport r = analysis::analyzeRaces(f);
    EXPECT_EQ(r.provenRacy(), 0u);
    EXPECT_GE(r.synchronized(), 1u);
}

TEST(AtomicRaceAnalysis, AtomicAgainstPlainStoreStillRaces)
{
    IrFunction f =
        IrBuilder::makeKernel("k", {{"buf", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    b.atomicRmw(AtomicOp::Add, b.param(0), b.constInt(1),
                MemOrder::Relaxed, MemScope::Gpu);
    b.store(b.param(0), b.constInt(7)); // plain store, same cell
    b.ret();
    const analysis::RaceReport r = analysis::analyzeRaces(f);
    EXPECT_GE(r.provenRacy(), 1u);
}

// ---------------------------------------------------------------------
// Cfg postdominators with fences/atomics against terminators.
// ---------------------------------------------------------------------

TEST(CfgAtomics, FenceOnlyBlockKeepsPostdomChain)
{
    // entry -> fencer -> exit, where fencer holds only a fence + br.
    IrFunction f =
        IrBuilder::makeKernel("k", {{"p", Type::ptr(4)}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto fencer = b.block("fencer");
    auto exit = b.block("exit");
    b.setInsertPoint(entry);
    b.atomicStore(b.param(0), b.constInt(1), MemOrder::Release,
                  MemScope::Gpu);
    b.jump(fencer);
    b.setInsertPoint(fencer);
    b.fence(MemOrder::AcqRel, MemScope::Gpu);
    b.jump(exit);
    b.setInsertPoint(exit);
    b.ret();

    const analysis::Cfg cfg = analysis::Cfg::build(f);
    EXPECT_TRUE(cfg.postDominates(exit, entry));
    EXPECT_TRUE(cfg.postDominates(fencer, entry));
    EXPECT_TRUE(cfg.postDominates(exit, fencer));
    EXPECT_FALSE(cfg.postDominates(entry, fencer));
    EXPECT_TRUE(analysis::verifyFunction(f).empty());
}

TEST(CfgAtomics, AtomicArmsOfDiamondDontPostdominateEachOther)
{
    // Diamond whose arms end in an atomic right before the branch;
    // neither arm postdominates the entry, the merge does.
    IrFunction f =
        IrBuilder::makeKernel("k", {{"p", Type::ptr(4)}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto lhs = b.block("lhs");
    auto rhs = b.block("rhs");
    auto merge = b.block("merge");
    b.setInsertPoint(entry);
    auto is0 = b.icmp(CmpOp::EQ, b.tid(), b.constInt(0));
    b.br(is0, lhs, rhs);
    b.setInsertPoint(lhs);
    b.atomicRmw(AtomicOp::Add, b.param(0), b.constInt(1),
                MemOrder::AcqRel, MemScope::Gpu);
    b.jump(merge);
    b.setInsertPoint(rhs);
    b.atomicCas(b.param(0), b.constInt(0), b.constInt(1),
                MemOrder::AcqRel, MemScope::Gpu);
    b.jump(merge);
    b.setInsertPoint(merge);
    b.fence(MemOrder::Acquire, MemScope::Gpu);
    b.ret();

    const analysis::Cfg cfg = analysis::Cfg::build(f);
    EXPECT_TRUE(cfg.postDominates(merge, entry));
    EXPECT_FALSE(cfg.postDominates(lhs, entry));
    EXPECT_FALSE(cfg.postDominates(rhs, entry));
    EXPECT_TRUE(cfg.postDominates(merge, lhs));
    EXPECT_TRUE(cfg.postDominates(merge, rhs));
    // A fence-terminated merge block is its own immediate region: the
    // postdominator tree must still be exit -> merge -> entry.
    EXPECT_EQ(cfg.ipdom[entry], int(merge));
}

} // namespace
} // namespace lmi

/**
 * @file
 * Trace-capture tests: the NVBit-style instruction stream must agree
 * with the run's own counters, respect capacity limits, expose the hint
 * bits, and yield the same Fig.-1 / Fig.-13 characterizations as the
 * timing counters.
 */

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "mechanisms/registry.hpp"
#include "sim/device.hpp"
#include "sim/trace.hpp"
#include "workloads/workloads.hpp"

namespace lmi {
namespace {

using namespace ir;

/** LaunchOptions with @p sink attached (the old launchTraced). */
LaunchOptions
traced(TraceSink& sink)
{
    LaunchOptions opts;
    opts.trace = &sink;
    return opts;
}

IrModule
vaddModule()
{
    IrFunction f = IrBuilder::makeKernel(
        "vadd", {{"a", Type::ptr(4)}, {"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto t = b.gtid();
    auto v = b.load(b.gep(b.param(0), t));
    b.store(b.gep(b.param(1), t), b.iadd(v, v));
    b.ret();
    IrModule m;
    m.functions.push_back(std::move(f));
    return m;
}

TEST(Trace, StreamMatchesRunCounters)
{
    Device dev(makeMechanism(MechanismKind::Lmi));
    const uint64_t a = dev.cudaMalloc(4096);
    const uint64_t out = dev.cudaMalloc(4096);
    const CompiledKernel k = dev.compile(vaddModule(), "vadd");

    TraceRecorder recorder;
    const RunResult r = dev.launch(k, 2, 128, {a, out}, traced(recorder));
    ASSERT_FALSE(r.faulted());

    EXPECT_EQ(recorder.events().size(), r.instructions);
    const TraceAnalysis analysis = analyzeTrace(recorder.events());
    EXPECT_EQ(analysis.instructions, r.instructions);
    EXPECT_EQ(analysis.thread_instructions, r.thread_instructions);
    EXPECT_EQ(analysis.mem_global, r.ldg + r.stg);
    EXPECT_EQ(analysis.mem_shared, r.lds + r.sts);
    EXPECT_EQ(analysis.mem_local, r.ldl + r.stl);
    // Under LMI the geps are hint-marked in the stream.
    EXPECT_GT(analysis.hinted, 0u);
}

TEST(Trace, BaselineCarriesNoHints)
{
    Device dev;
    const uint64_t a = dev.cudaMalloc(4096);
    const uint64_t out = dev.cudaMalloc(4096);
    const CompiledKernel k = dev.compile(vaddModule(), "vadd");
    TraceRecorder recorder;
    dev.launch(k, 1, 64, {a, out}, traced(recorder));
    const TraceAnalysis analysis = analyzeTrace(recorder.events());
    EXPECT_EQ(analysis.hinted, 0u);
    EXPECT_DOUBLE_EQ(analysis.hintedFraction(), 0.0);
}

TEST(Trace, CapacityLimitsBufferButCounts)
{
    Device dev;
    const uint64_t a = dev.cudaMalloc(4096);
    const uint64_t out = dev.cudaMalloc(4096);
    const CompiledKernel k = dev.compile(vaddModule(), "vadd");
    TraceRecorder recorder(10);
    const RunResult r = dev.launch(k, 2, 128, {a, out}, traced(recorder));
    EXPECT_EQ(recorder.events().size(), 10u);
    EXPECT_EQ(recorder.totalSeen(), r.instructions);
}

TEST(Trace, EventsAreWellFormed)
{
    Device dev;
    const uint64_t a = dev.cudaMalloc(4096);
    const uint64_t out = dev.cudaMalloc(4096);
    const CompiledKernel k = dev.compile(vaddModule(), "vadd");
    TraceRecorder recorder;
    dev.launch(k, 2, 64, {a, out}, traced(recorder));
    for (const TraceEvent& e : recorder.events()) {
        EXPECT_LT(e.pc, k.program.code.size());
        EXPECT_NE(e.active_mask, 0u);
        EXPECT_LT(e.block, 2u);
        EXPECT_FALSE(traceEventToString(e).empty());
    }
    // Cycles are monotone per (sm, warp) stream.
    std::map<std::pair<uint32_t, uint64_t>, uint64_t> last;
    for (const TraceEvent& e : recorder.events()) {
        auto key = std::make_pair(e.sm, uint64_t(e.block) * 64 + e.warp);
        auto it = last.find(key);
        if (it != last.end()) {
            EXPECT_GE(e.cycle, it->second);
        }
        last[key] = e.cycle;
    }
}

TEST(Trace, WorkloadCharacterizationMatchesFig13Ratio)
{
    // The trace-derived check ratio for gaussian is the Fig. 13 metric.
    Device dev(makeMechanism(MechanismKind::Lmi));
    WorkloadProfile p = findWorkload("gaussian");
    p.grid_blocks = 8;
    p.block_threads = 64;
    const uint64_t in = dev.cudaMalloc(p.elements() * 4 + 64);
    const uint64_t out = dev.cudaMalloc(p.elements() * 4 + 64);
    const CompiledKernel k = dev.compile(buildWorkloadKernel(p), p.name);
    TraceRecorder recorder;
    const RunResult r =
        dev.launch(k, p.grid_blocks, p.block_threads,
                   {in, out, p.elements()}, traced(recorder));
    ASSERT_FALSE(r.faulted());
    const TraceAnalysis analysis = analyzeTrace(recorder.events());
    EXPECT_GT(analysis.checkToLdstRatio(), 40.0);
    const std::string s = analysis.toString();
    EXPECT_NE(s.find("check/LDST ratio"), std::string::npos);
}

} // namespace
} // namespace lmi

/**
 * @file
 * Unit tests for the allocator stack: global (cudaMalloc model), device
 * heap (Fig. 5 model), and the static layout engine.
 */

#include <gtest/gtest.h>

#include "alloc/device_heap.hpp"
#include "alloc/global_allocator.hpp"
#include "alloc/layout.hpp"
#include "common/bitutil.hpp"
#include "common/logging.hpp"

namespace lmi {
namespace {

GlobalAllocator::Config
lmiConfig()
{
    GlobalAllocator::Config cfg;
    cfg.policy = AllocPolicy::Pow2Aligned;
    cfg.encode_extent = true;
    return cfg;
}

TEST(GlobalAllocator, PackedReservesAlignedRequest)
{
    GlobalAllocator a; // packed
    const uint64_t p = a.alloc(1000);
    ASSERT_NE(p, 0u);
    EXPECT_EQ(p % 256, 0u); // cudaMalloc's 256 B alignment
    const AllocBlock* b = a.findLive(p);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->requested, 1000u);
    EXPECT_EQ(b->reserved, 1024u); // rounded to 256 B granule
}

TEST(GlobalAllocator, Pow2ReturnsEncodedSizeAlignedPointer)
{
    GlobalAllocator a(lmiConfig());
    const uint64_t p = a.alloc(5000); // -> 8192
    ASSERT_NE(p, 0u);
    EXPECT_TRUE(PointerCodec::isValid(p));
    const PointerCodec codec;
    EXPECT_EQ(codec.sizeOf(p), 8192u);
    EXPECT_EQ(PointerCodec::addressOf(p) % 8192, 0u);
}

TEST(GlobalAllocator, FragmentationAccounting)
{
    GlobalAllocator packed;
    GlobalAllocator aligned(lmiConfig());
    // The Fig. 4 pathology: 2^n + header-epsilon requests double under
    // pow2 alignment.
    const uint64_t req = 1024 * 1024 + 64;
    packed.alloc(req);
    aligned.alloc(req);
    EXPECT_EQ(packed.liveReservedBytes(), alignUp(req, 256));
    EXPECT_EQ(aligned.liveReservedBytes(), 2 * 1024 * 1024u);
}

TEST(GlobalAllocator, PeakTracksHighWaterMark)
{
    GlobalAllocator a;
    const uint64_t p1 = a.alloc(4096);
    const uint64_t p2 = a.alloc(4096);
    EXPECT_EQ(a.peakReservedBytes(), 8192u);
    ASSERT_FALSE(a.free(p1).has_value());
    ASSERT_FALSE(a.free(p2).has_value());
    EXPECT_EQ(a.liveReservedBytes(), 0u);
    EXPECT_EQ(a.peakReservedBytes(), 8192u);
}

TEST(GlobalAllocator, SizeclassReuseAndEpochStamping)
{
    GlobalAllocator a;
    const uint64_t p1 = a.alloc(4096);
    const uint64_t p2 = a.alloc(4096);
    const uint64_t p3 = a.alloc(4096);
    ASSERT_FALSE(a.free(p2).has_value());
    // Same-size reallocation pops the freed block off the sizeclass
    // cache (LIFO), re-minting the extent with a bumped epoch.
    const uint64_t p4 = a.alloc(4096);
    EXPECT_EQ(p4, p2);
    const MessageHeap::Extent* e = a.extentAt(p4);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->epoch, 1u);
    EXPECT_TRUE(e->live);
    ASSERT_FALSE(a.free(p1).has_value());
    ASSERT_FALSE(a.free(p3).has_value());
    ASSERT_FALSE(a.free(p4).has_value());
    // Huge blocks bypass the sizeclass layer and coalesce in the range
    // allocator: allocate, free, and the same span is reusable.
    const uint64_t h1 = a.alloc(1024 * 1024);
    ASSERT_NE(h1, 0u);
    ASSERT_FALSE(a.free(h1).has_value());
    const uint64_t h2 = a.alloc(1024 * 1024);
    EXPECT_EQ(h2, h1);
}

TEST(GlobalAllocator, DoubleFreeAndInvalidFree)
{
    GlobalAllocator a;
    const uint64_t p = a.alloc(512);
    ASSERT_FALSE(a.free(p).has_value());
    const MaybeFault dbl = a.free(p);
    ASSERT_TRUE(dbl.has_value());
    EXPECT_EQ(dbl->kind, FaultKind::DoubleFree);

    const MaybeFault inv = a.free(0xDEAD000);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(inv->kind, FaultKind::InvalidFree);
}

TEST(GlobalAllocator, FreeAcceptsEncodedInteriorBase)
{
    GlobalAllocator a(lmiConfig());
    const uint64_t p = a.alloc(1024);
    ASSERT_FALSE(a.free(p).has_value());
    EXPECT_EQ(a.liveReservedBytes(), 0u);
}

TEST(GlobalAllocator, FindLiveLocatesInteriorAddresses)
{
    GlobalAllocator a;
    const uint64_t p = a.alloc(4096);
    EXPECT_NE(a.findLive(p + 100), nullptr);
    EXPECT_EQ(a.findLive(p + 4096), nullptr);
}

TEST(GlobalAllocator, ExhaustionReturnsNull)
{
    GlobalAllocator::Config cfg;
    cfg.region_base = 0x1000000;
    cfg.region_size = 4096;
    GlobalAllocator a(cfg);
    EXPECT_NE(a.alloc(4096), 0u);
    EXPECT_EQ(a.alloc(1), 0u);
}

TEST(DeviceHeap, ChunkRoundingMatchesFig5)
{
    DeviceHeapAllocator heap;
    // Small request -> 80 B chunk multiples.
    const uint64_t p = heap.malloc(0, 0, 100);
    ASSERT_NE(p, 0u);
    EXPECT_EQ(heap.liveReservedBytes(), 160u); // 2 x 80 B
    // Large request -> 2208 B chunk multiples.
    const uint64_t q = heap.malloc(0, 0, 3000);
    ASSERT_NE(q, 0u);
    EXPECT_EQ(heap.liveReservedBytes(), 160u + 2 * 2208u);
}

TEST(DeviceHeap, BaselineFragmentationUpToFiftyPct)
{
    DeviceHeapAllocator heap;
    // 81 bytes occupies two 80 B chunks: ~49% internal fragmentation,
    // the paper's §IV-E observation.
    const uint64_t p = heap.malloc(0, 0, 81);
    ASSERT_NE(p, 0u);
    const double frag =
        1.0 - double(heap.liveRequestedBytes()) / heap.liveReservedBytes();
    EXPECT_NEAR(frag, 0.49, 0.02);
}

TEST(DeviceHeap, ThreadsInDifferentWarpsUseDifferentGroups)
{
    DeviceHeapAllocator heap;
    const uint64_t p0 = heap.malloc(0, 0, 64);   // warp 0
    const uint64_t p1 = heap.malloc(0, 32, 64);  // warp 1
    const uint64_t p2 = heap.malloc(0, 1, 64);   // warp 0 again
    ASSERT_NE(p0, 0u);
    ASSERT_NE(p1, 0u);
    EXPECT_EQ(heap.groupCount(), 2u);
    // Warp 0's two buffers are adjacent chunks of one group.
    EXPECT_EQ(p2, p0 + 80);
}

TEST(DeviceHeap, Pow2PolicyEncodesExtent)
{
    DeviceHeapAllocator::Config cfg;
    cfg.policy = AllocPolicy::Pow2Aligned;
    cfg.encode_extent = true;
    DeviceHeapAllocator heap(cfg);
    const uint64_t p = heap.malloc(0, 3, 300);
    ASSERT_NE(p, 0u);
    EXPECT_TRUE(PointerCodec::isValid(p));
    const PointerCodec codec;
    EXPECT_EQ(codec.sizeOf(p), 512u);
    EXPECT_EQ(PointerCodec::addressOf(p) % 512, 0u);
}

TEST(DeviceHeap, FreeFaults)
{
    DeviceHeapAllocator heap;
    const uint64_t p = heap.malloc(0, 0, 64);
    ASSERT_FALSE(heap.free(0, 0, p).has_value());
    const MaybeFault dbl = heap.free(0, 0, p);
    ASSERT_TRUE(dbl.has_value());
    EXPECT_EQ(dbl->kind, FaultKind::DoubleFree);
    const MaybeFault inv = heap.free(0, 0, kHeapBase + 0x100000);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(inv->kind, FaultKind::InvalidFree);
}

TEST(DeviceHeap, ChunkReuseAfterFree)
{
    DeviceHeapAllocator heap;
    const uint64_t p = heap.malloc(0, 0, 64);
    ASSERT_FALSE(heap.free(0, 0, p).has_value());
    const uint64_t q = heap.malloc(0, 0, 64);
    EXPECT_EQ(q, p); // delayed-UAF substrate: memory is reassigned
}

TEST(DeviceHeap, GroupAccountingAcrossFreeRealloc)
{
    // Free-then-realloc of the same extent must reuse the open buffer
    // group (no second group, no footprint growth) and re-mint the
    // extent record in place.
    DeviceHeapAllocator heap;
    const uint64_t p = heap.malloc(0, 0, 64);
    ASSERT_NE(p, 0u);
    const uint64_t footprint = heap.core().footprintBytes();
    ASSERT_FALSE(heap.free(0, 0, p).has_value());
    const uint64_t q = heap.malloc(0, 0, 64);
    EXPECT_EQ(q, p);
    EXPECT_EQ(heap.groupCount(), 1u);
    EXPECT_EQ(heap.core().footprintBytes(), footprint);
    EXPECT_EQ(heap.liveReservedBytes(), 80u);
    const MessageHeap::Extent* e = heap.extentAt(q);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->epoch, 1u);
    EXPECT_TRUE(e->live);
}

TEST(DeviceHeap, FindLive)
{
    DeviceHeapAllocator heap;
    const uint64_t p = heap.malloc(0, 0, 100);
    const auto hit = heap.findLive(p + 50);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->base, p);
    EXPECT_FALSE(heap.findLive(p + 4096).has_value());
}

TEST(Layout, PackedIsTight)
{
    const RegionLayout l = layoutBuffers(
        {{"a", 100}, {"b", 24}, {"c", 8}}, AllocPolicy::Packed);
    EXPECT_EQ(l.buffers[0].offset, 0u);
    EXPECT_EQ(l.buffers[1].offset, 112u); // 100 -> 112 (16B align)
    EXPECT_EQ(l.buffers[2].offset, 144u);
    EXPECT_EQ(l.total_bytes, 160u);
}

TEST(Layout, Pow2AlignsEachBuffer)
{
    const RegionLayout l = layoutBuffers(
        {{"a", 100}, {"b", 1000}}, AllocPolicy::Pow2Aligned);
    // b (1024) placed first at 0, a (256) after it.
    EXPECT_EQ(l.find("b").offset, 0u);
    EXPECT_EQ(l.find("b").reserved, 1024u);
    EXPECT_EQ(l.find("a").offset, 1024u);
    EXPECT_EQ(l.find("a").reserved, 256u);
    EXPECT_EQ(l.required_alignment, 1024u);
    EXPECT_EQ(l.total_bytes % l.required_alignment, 0u);
}

TEST(Layout, Pow2OffsetsAreSizeAligned)
{
    const RegionLayout l = layoutBuffers(
        {{"a", 300}, {"b", 600}, {"c", 5000}, {"d", 70}},
        AllocPolicy::Pow2Aligned);
    for (const auto& b : l.buffers)
        EXPECT_EQ(b.offset % b.reserved, 0u) << b.name;
}

TEST(Layout, FindUnknownBufferIsFatal)
{
    const RegionLayout l = layoutBuffers({{"a", 8}}, AllocPolicy::Packed);
    EXPECT_THROW(l.find("zzz"), FatalError);
}

} // namespace
} // namespace lmi

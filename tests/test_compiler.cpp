/**
 * @file
 * Unit tests for the compiler: pointer analysis (Fig. 8), codegen
 * (Fig. 7 stack idiom, hint bits), inlining with scope markers, and the
 * DBI instrumenter.
 */

#include <gtest/gtest.h>

#include "compiler/codegen.hpp"
#include "compiler/instrument.hpp"
#include "ir/builder.hpp"
#include "sim/device.hpp"

namespace lmi {
namespace {

using namespace ir;

IrModule
singleKernelModule(IrFunction f)
{
    IrModule m;
    m.functions.push_back(std::move(f));
    return m;
}

/** out[tid] = in[tid] * 2 with a stack staging buffer. */
IrModule
stackKernel()
{
    IrFunction f = IrBuilder::makeKernel(
        "stacky", {{"in", Type::ptr(4)}, {"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto in = b.param(0);
    auto out = b.param(1);
    auto tid = b.gtid();
    auto buf = b.alloca_(96, 4); // the 0x60 frame of the paper's Fig. 7
    auto slot = b.gep(buf, b.constInt(3));
    auto v = b.load(b.gep(in, tid));
    b.store(slot, v);
    auto v2 = b.load(slot);
    b.store(b.gep(out, tid), v2);
    b.ret();
    return singleKernelModule(std::move(f));
}

TEST(PointerAnalysis, FindsGepAndPtrAdds)
{
    IrModule m = stackKernel();
    const PointerAnalysis pa = analyzePointers(m.functions[0]);
    EXPECT_TRUE(pa.ok());
    unsigned geps = 0;
    for (ValueId v = 1; v < m.functions[0].values.size(); ++v)
        if (m.functions[0].inst(v).op == IrOp::Gep)
            geps += pa.pointer_ops.count(v);
    EXPECT_EQ(geps, 3u);
}

TEST(PointerAnalysis, RejectsIntToPtr)
{
    IrFunction f = IrBuilder::makeKernel("evil", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto i = b.constInt(0x1234);
    auto p = b.intToPtr(i, Type::ptr(4));
    b.store(p, i);
    b.ret();
    const PointerAnalysis pa = analyzePointers(f);
    ASSERT_FALSE(pa.ok());
    EXPECT_NE(pa.violations[0].message.find("inttoptr"), std::string::npos);
    EXPECT_EQ(pa.violations[0].severity, analysis::Severity::Error);
    EXPECT_EQ(pa.violations[0].function, "evil");
}

TEST(PointerAnalysis, RejectsPointerStore)
{
    IrFunction f = IrBuilder::makeKernel("escape", {{"p", Type::ptr(8)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto p = b.param(0);
    b.store(p, p); // store a pointer value to memory
    b.ret();
    const PointerAnalysis pa = analyzePointers(f);
    ASSERT_FALSE(pa.ok());
    EXPECT_NE(pa.violations[0].message.find("store of pointer"),
              std::string::npos);
}

TEST(PointerAnalysis, CastsAllowedWhenUnrestricted)
{
    IrFunction f = IrBuilder::makeKernel("legacy", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto i = b.constInt(0x1234);
    b.intToPtr(i, Type::ptr(4));
    b.ret();
    EXPECT_TRUE(analyzePointers(f, /*restrict_casts=*/false).ok());
}

TEST(Codegen, BaselineHasNoHints)
{
    const CompiledKernel ck =
        compileKernel(stackKernel(), "stacky", CodegenOptions{});
    for (const auto& inst : ck.program.code)
        EXPECT_FALSE(inst.hints.active);
}

TEST(Codegen, LmiMarksPointerOps)
{
    CodegenOptions opts;
    opts.lmi = true;
    const CompiledKernel ck = compileKernel(stackKernel(), "stacky", opts);
    unsigned hinted = 0;
    for (const auto& inst : ck.program.code)
        if (inst.hints.active) {
            ++hinted;
            EXPECT_TRUE(isIntAlu(inst.op)) << inst.toString();
        }
    EXPECT_EQ(hinted, 3u); // the three geps
}

TEST(Codegen, PrologueFollowsFig7)
{
    CodegenOptions opts;
    const CompiledKernel ck = compileKernel(stackKernel(), "stacky", opts);
    const auto& code = ck.program.code;
    ASSERT_GE(code.size(), 2u);
    // MOV R1, c[0x0][0x28]
    EXPECT_EQ(code[0].op, Opcode::MOV);
    EXPECT_EQ(code[0].dst, int(kStackPtrReg));
    EXPECT_EQ(code[0].src[0].kind, Operand::Kind::CBank);
    EXPECT_EQ(code[0].src[0].value, Program::kStackPtrOffset);
    // ISUB R1, R1, frame
    EXPECT_EQ(code[1].op, Opcode::ISUB);
    EXPECT_EQ(code[1].dst, int(kStackPtrReg));
    EXPECT_EQ(code[1].src[1].value, ck.program.frame_bytes);
    // 96 B packed frame matches the paper's 0x60.
    EXPECT_EQ(ck.program.frame_bytes, 0x60u);
}

TEST(Codegen, LmiRoundsFrameToPow2)
{
    CodegenOptions opts;
    opts.lmi = true;
    const CompiledKernel ck = compileKernel(stackKernel(), "stacky", opts);
    // 96 B buffer -> 256 B (K) reserved, frame is 256-aligned.
    EXPECT_EQ(ck.program.frame_bytes, 256u);
    ASSERT_EQ(ck.frame.buffers.size(), 1u);
    EXPECT_EQ(ck.frame.buffers[0].requested, 96u);
    EXPECT_EQ(ck.frame.buffers[0].reserved, 256u);
    EXPECT_EQ(ck.frame.buffers[0].offset % 256, 0u);
}

TEST(Codegen, LmiEmitsExtentEncodeForAlloca)
{
    CodegenOptions opts;
    opts.lmi = true;
    const CompiledKernel ck = compileKernel(stackKernel(), "stacky", opts);
    // Expect the MOV/SHL/LOP.OR extent sequence after the alloca IADD.
    const auto& code = ck.program.code;
    bool found = false;
    for (size_t i = 0; i + 2 < code.size(); ++i) {
        if (code[i].op == Opcode::MOV && code[i].dst == int(kScratchReg0) &&
            code[i + 1].op == Opcode::SHL &&
            code[i + 1].src[1].value == kExtentShift &&
            code[i + 2].op == Opcode::LOP_OR) {
            found = true;
            break;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Codegen, LmiCompileErrorOnIntToPtr)
{
    IrFunction f = IrBuilder::makeKernel("evil", {{"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto i = b.constInt(0x100);
    auto p = b.intToPtr(i, Type::ptr(4));
    auto v = b.load(p);
    b.store(b.gep(b.param(0), b.constInt(0)), v);
    b.ret();
    CodegenOptions opts;
    opts.lmi = true;
    EXPECT_THROW(compileKernel(singleKernelModule(std::move(f)), "evil",
                               opts),
                 CompileError);
}

TEST(Codegen, FreeNullifiesUnderLmi)
{
    IrFunction f = IrBuilder::makeKernel("heapy", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto size = b.constInt(512);
    auto p = b.malloc_(size, 4);
    b.free_(p);
    b.ret();
    CodegenOptions opts;
    opts.lmi = true;
    const CompiledKernel ck =
        compileKernel(singleKernelModule(std::move(f)), "heapy", opts);
    // Find FREE followed by SHL/SHR on the same register.
    const auto& code = ck.program.code;
    bool found = false;
    for (size_t i = 0; i + 2 < code.size(); ++i) {
        if (code[i].op == Opcode::FREE && code[i + 1].op == Opcode::SHL &&
            code[i + 2].op == Opcode::SHR &&
            code[i + 1].src[1].value == kExtentBits) {
            found = true;
            EXPECT_EQ(code[i + 1].dst, int(code[i].src[0].value));
        }
    }
    EXPECT_TRUE(found);
}

TEST(Codegen, SwBaggyInjectsCheckSequences)
{
    CodegenOptions base, baggy;
    baggy.sw_baggy = true;
    const CompiledKernel ck0 = compileKernel(stackKernel(), "stacky", base);
    const CompiledKernel ck1 = compileKernel(stackKernel(), "stacky", baggy);
    // 3 pointer ops x 6-instruction check + extent-encode + error stub.
    EXPECT_GT(ck1.program.code.size(), ck0.program.code.size() + 18);
    bool has_trap = false;
    for (const auto& inst : ck1.program.code)
        has_trap |= inst.op == Opcode::TRAP;
    EXPECT_TRUE(has_trap);
}

TEST(Inline, CallBecomesJumpAndScopeEnd)
{
    IrModule m;
    {
        // Device function: fills a local buffer, returns its first elem.
        IrFunction helper = IrBuilder::makeKernel("helper", {});
        helper.ret_type = Type::i64();
        IrBuilder b(helper);
        b.setInsertPoint(b.block("entry"));
        auto buf = b.alloca_(256, 4);
        auto idx = b.constInt(0);
        auto slot = b.gep(buf, idx);
        auto c = b.constInt(7, Type::i32());
        b.store(slot, c);
        auto v = b.load(slot);
        b.retVal(v);
        m.functions.push_back(std::move(helper));
    }
    {
        IrFunction kernel =
            IrBuilder::makeKernel("main", {{"out", Type::ptr(4)}});
        IrBuilder b(kernel);
        b.setInsertPoint(b.block("entry"));
        auto r = b.call("helper", Type::i64(), {});
        b.store(b.gep(b.param(0), b.constInt(0)), r);
        b.ret();
        m.functions.push_back(std::move(kernel));
    }

    const IrFunction flat = inlineCalls(m, *m.find("main"));
    EXPECT_NO_THROW(verify(flat));
    unsigned calls = 0, scope_ends = 0, allocas = 0;
    for (BlockId b = 0; b < flat.blocks.size(); ++b)
        for (ValueId v : flat.blocks[b].insts) {
            calls += flat.inst(v).op == IrOp::Call;
            scope_ends += flat.inst(v).op == IrOp::ScopeEnd;
            allocas += flat.inst(v).op == IrOp::Alloca;
        }
    EXPECT_EQ(calls, 0u);
    EXPECT_EQ(scope_ends, 1u);
    EXPECT_EQ(allocas, 1u);

    // And it compiles under LMI, nullifying at the scope end.
    CodegenOptions opts;
    opts.lmi = true;
    EXPECT_NO_THROW(compileKernel(m, "main", opts));
}

TEST(Inline, UnknownCalleeIsFatal)
{
    IrFunction kernel = IrBuilder::makeKernel("main", {});
    IrBuilder b(kernel);
    b.setInsertPoint(b.block("entry"));
    b.call("ghost", Type::voidTy(), {});
    b.ret();
    IrModule m = singleKernelModule(std::move(kernel));
    EXPECT_THROW(inlineCalls(m, m.functions[0]), FatalError);
}

TEST(Dbi, MemcheckInstrumentsLdst)
{
    const CompiledKernel ck =
        compileKernel(stackKernel(), "stacky", CodegenOptions{});
    DbiOptions opts;
    opts.instrument_ldst = true;
    opts.check_alu_instrs = 10;
    opts.check_mem_loads = 2;
    DbiReport rep;
    const Program instr = instrumentProgram(ck.program, opts, &rep);
    EXPECT_EQ(rep.sites_ldst, 4u); // two loads + two stores
    EXPECT_EQ(rep.sites_pointer, 0u);
    EXPECT_EQ(instr.code.size(),
              ck.program.code.size() + rep.injected_instructions);
    // 1 seed + 2*(shr+ldg) + 10 alu = 15 per site
    EXPECT_EQ(rep.injected_instructions, 4u * 15u);
}

TEST(Dbi, LmiDbiInstrumentsPointerOpsToo)
{
    CodegenOptions copts;
    copts.lmi = true;
    const CompiledKernel ck = compileKernel(stackKernel(), "stacky", copts);
    DbiOptions opts;
    opts.instrument_ldst = true;
    opts.instrument_pointer_ops = true;
    DbiReport rep;
    instrumentProgram(ck.program, opts, &rep);
    EXPECT_EQ(rep.sites_pointer, 3u); // the hinted geps
    EXPECT_GT(rep.checkToLdstRatio(), 1.0);
}

TEST(Dbi, BranchTargetsRemapped)
{
    // Build a loop kernel, instrument it, and ensure branches still
    // point at the first instruction of their original target.
    IrFunction f = IrBuilder::makeKernel(
        "loop", {{"out", Type::ptr(4)}, {"n", Type::i64()}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto header = b.block("header");
    auto exit = b.block("exit");
    b.setInsertPoint(entry);
    auto zero = b.constInt(0);
    auto n = b.param(1);
    auto out = b.param(0);
    b.jump(header);
    b.setInsertPoint(header);
    auto i = b.phi(Type::i64(), {{zero, entry}});
    auto slot = b.gep(out, i);
    b.store(slot, i);
    auto next = b.iadd(i, b.constInt(1));
    f.inst(i).ops.push_back(next);
    f.inst(i).phi_blocks.push_back(header);
    auto c = b.icmp(CmpOp::LT, next, n);
    b.br(c, header, exit);
    b.setInsertPoint(exit);
    b.ret();

    const CompiledKernel ck = compileKernel(singleKernelModule(std::move(f)),
                                            "loop", CodegenOptions{});
    DbiOptions opts;
    DbiReport rep;
    const Program instr = instrumentProgram(ck.program, opts, &rep);
    EXPECT_NO_THROW(instr.validate());
    EXPECT_GT(rep.sites_ldst, 0u);
}

} // namespace
} // namespace lmi

namespace lmi {
namespace {

using namespace ir;

TEST(RegAlloc, ReusesRegistersForShortLivedValues)
{
    // 600 sequential dependent values: with one-register-per-value this
    // would exhaust the file; the linear-scan allocator must reuse.
    IrFunction f = IrBuilder::makeKernel("chain", {{"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto x = b.constInt(1);
    auto three = b.constInt(3);
    for (int i = 0; i < 600; ++i)
        x = b.iadd(b.imul(x, three), three);
    b.store(b.gep(b.param(0), b.constInt(0)), x);
    b.ret();
    IrModule m;
    m.functions.push_back(std::move(f));

    // 600 values exceed the 245-register pool: compiling at all proves
    // reuse (the pool is drained round-robin to space out writes).
    const CompiledKernel ck = compileKernel(m, "chain", CodegenOptions{});
    unsigned max_reg = 0;
    for (const auto& inst : ck.program.code)
        if (inst.dst > int(max_reg))
            max_reg = unsigned(inst.dst);
    EXPECT_LT(max_reg, kMaxValueReg);
}

TEST(RegAlloc, LoopCarriedValuesSurviveBackEdges)
{
    // A constant defined before the loop and used inside must keep its
    // register across iterations even when many temporaries churn.
    IrFunction f = IrBuilder::makeKernel(
        "loopsum", {{"out", Type::ptr(8)}, {"n", Type::i64()}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto header = b.block("header");
    auto body = b.block("body");
    auto exit = b.block("exit");

    b.setInsertPoint(entry);
    auto seven = b.constInt(7); // live across the whole loop
    auto n = b.param(1);
    auto zero = b.constInt(0);
    b.jump(header);

    b.setInsertPoint(header);
    auto i = b.phi(Type::i64(), {{zero, entry}});
    auto acc = b.phi(Type::i64(), {{zero, entry}});
    auto cond = b.icmp(CmpOp::LT, i, n);
    b.br(cond, body, exit);

    b.setInsertPoint(body);
    ValueId t = acc;
    for (int k = 0; k < 40; ++k) // register churn inside the loop
        t = b.iadd(t, seven);
    auto next_i = b.iadd(i, b.constInt(1));
    f.inst(i).ops.push_back(next_i);
    f.inst(i).phi_blocks.push_back(body);
    f.inst(acc).ops.push_back(t);
    f.inst(acc).phi_blocks.push_back(body);
    b.jump(header);

    b.setInsertPoint(exit);
    b.store(b.gep(b.param(0), b.constInt(0)), acc);
    b.ret();
    IrModule m;
    m.functions.push_back(std::move(f));

    Device dev;
    const uint64_t out = dev.cudaMalloc(256);
    const CompiledKernel k = dev.compile(m, "loopsum");
    const RunResult r = dev.launch(k, 1, 1, {out, 5});
    ASSERT_FALSE(r.faulted());
    // 5 iterations x 40 adds of 7 each.
    EXPECT_EQ(dev.peek64(out), uint64_t(5 * 40 * 7));
}

TEST(RegAlloc, HugeKernelStillFitsUnderLmi)
{
    // The LMI variant adds extent sequences and keeps allocas alive to
    // the end; a large kernel must still allocate.
    IrFunction f = IrBuilder::makeKernel("big", {{"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto buf = b.alloca_(512, 4);
    auto t = b.gtid();
    ValueId x = b.load(b.gep(buf, b.iand(t, b.constInt(63))));
    auto c1 = b.constInt(1);
    for (int i = 0; i < 400; ++i)
        x = b.iadd(x, c1);
    b.store(b.gep(b.param(0), t), x);
    b.ret();
    IrModule m;
    m.functions.push_back(std::move(f));
    CodegenOptions opts;
    opts.lmi = true;
    EXPECT_NO_THROW(compileKernel(m, "big", opts));
}

} // namespace
} // namespace lmi

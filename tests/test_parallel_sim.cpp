/**
 * @file
 * Byte-identity of the parallel simulator engine.
 *
 * GpuSim::run with sim_threads > 1 must produce results
 * indistinguishable from the serial engine: the slice-synchronous
 * canonical schedule makes the outcome a pure function of the launch,
 * never of the worker count. These tests pin that contract for every
 * registered mechanism across structurally different workloads and for
 * the deferred device-heap path, comparing cycles, the complete
 * instruction/cache profile, faults, the full stat registry, and an
 * order-independent digest of global memory.
 */

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "mechanisms/registry.hpp"
#include "workloads/workloads.hpp"

namespace lmi {
namespace {

/** Everything observable about one run, in comparable form. */
struct RunSnapshot
{
    RunResult result;
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    uint64_t mem_digest = 0;
};

RunSnapshot
runAt(MechanismKind kind, const WorkloadProfile& profile, double scale,
      unsigned sim_threads)
{
    Device dev(makeMechanism(kind));
    dev.setSimThreads(sim_threads);
    const WorkloadRun run = runWorkload(dev, profile, scale);
    RunSnapshot snap;
    snap.result = run.result;
    snap.counters = dev.stats().counters();
    snap.gauges = dev.stats().gauges();
    snap.mem_digest = dev.globalMemory().digest();
    return snap;
}

void
expectIdentical(const RunSnapshot& a, const RunSnapshot& b)
{
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.instructions, b.result.instructions);
    EXPECT_EQ(a.result.thread_instructions, b.result.thread_instructions);
    EXPECT_EQ(a.result.ldg, b.result.ldg);
    EXPECT_EQ(a.result.stg, b.result.stg);
    EXPECT_EQ(a.result.lds, b.result.lds);
    EXPECT_EQ(a.result.sts, b.result.sts);
    EXPECT_EQ(a.result.ldl, b.result.ldl);
    EXPECT_EQ(a.result.stl, b.result.stl);
    EXPECT_EQ(a.result.l1_hits, b.result.l1_hits);
    EXPECT_EQ(a.result.l1_misses, b.result.l1_misses);
    EXPECT_EQ(a.result.l2_hits, b.result.l2_hits);
    EXPECT_EQ(a.result.l2_misses, b.result.l2_misses);
    EXPECT_EQ(a.result.dram_accesses, b.result.dram_accesses);
    EXPECT_EQ(a.result.aborted, b.result.aborted);
    ASSERT_EQ(a.result.faults.size(), b.result.faults.size());
    for (size_t i = 0; i < a.result.faults.size(); ++i) {
        EXPECT_EQ(a.result.faults[i].kind, b.result.faults[i].kind);
        EXPECT_EQ(a.result.faults[i].address, b.result.faults[i].address);
        EXPECT_EQ(a.result.faults[i].detail, b.result.faults[i].detail);
    }
    EXPECT_EQ(a.result.stats.counters(), b.result.stats.counters());
    EXPECT_EQ(a.counters, b.counters);
    EXPECT_EQ(a.gauges, b.gauges);
    EXPECT_EQ(a.mem_digest, b.mem_digest);
}

/** Structurally diverse trio: scattered loads (bfs), stencil with
 *  shared tiles (hotspot), dependency-grid DP (needle). */
const char* const kWorkloads[] = {"bfs", "hotspot", "needle"};

TEST(ParallelSim, EveryMechanismByteIdenticalAcrossThreadCounts)
{
    for (MechanismKind kind : allMechanisms()) {
        for (const char* name : kWorkloads) {
            SCOPED_TRACE(std::string(mechanismKindName(kind)) + "/" +
                         name);
            const WorkloadProfile profile = findWorkload(name);
            const RunSnapshot serial = runAt(kind, profile, 0.1, 1);
            for (unsigned threads : {2u, 8u}) {
                SCOPED_TRACE("sim_threads=" + std::to_string(threads));
                expectIdentical(serial,
                                runAt(kind, profile, 0.1, threads));
            }
        }
    }
}

TEST(ParallelSim, DeviceHeapOpsByteIdenticalAcrossThreadCounts)
{
    // Deferred MALLOC/FREE commit in canonical (sm, seq) order — the
    // trickiest serialization point of the parallel engine.
    WorkloadProfile p = findWorkload("nn");
    p.heap_allocs = 1;
    p.heap_alloc_bytes = 300;
    for (MechanismKind kind :
         {MechanismKind::Baseline, MechanismKind::Lmi}) {
        SCOPED_TRACE(mechanismKindName(kind));
        const RunSnapshot serial = runAt(kind, p, 0.1, 1);
        for (unsigned threads : {2u, 8u}) {
            SCOPED_TRACE("sim_threads=" + std::to_string(threads));
            expectIdentical(serial, runAt(kind, p, 0.1, threads));
        }
    }
}

/** Every thread of every block dereferences one element past its
 *  buffer — many SMs race to raise the first fault. */
ir::IrModule
oobKernel(unsigned n)
{
    using namespace ir;
    IrFunction f = IrBuilder::makeKernel(
        "oob", {{"buf", Type::ptr(4)}, {"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto buf = b.param(0);
    auto out = b.param(1);
    auto t = b.gtid();
    auto idx = b.iadd(b.iand(t, b.constInt(7)), b.constInt(n));
    auto x = b.load(b.gep(buf, idx)); // OOB: idx >= n for every thread
    b.store(b.gep(out, b.iand(t, b.constInt(n - 1))), x);
    b.ret();
    IrModule m;
    m.functions.push_back(std::move(f));
    return m;
}

RunSnapshot
runOobAt(MechanismKind kind, unsigned sim_threads)
{
    const unsigned n = 256;
    Device dev(makeMechanism(kind));
    dev.setSimThreads(sim_threads);
    const uint64_t buf = dev.cudaMalloc(n * 4);
    const uint64_t out = dev.cudaMalloc(n * 4);
    const CompiledKernel k = dev.compile(oobKernel(n), "oob");
    RunSnapshot snap;
    snap.result = dev.launch(k, 16, 128, {buf, out});
    snap.counters = dev.stats().counters();
    snap.gauges = dev.stats().gauges();
    snap.mem_digest = dev.globalMemory().digest();
    return snap;
}

TEST(ParallelSim, FaultingRunByteIdenticalAcrossThreadCounts)
{
    // A run that aborts must pick the same canonical first fault at any
    // worker count (winner = min (cycle, sm, seq), not wall-clock race).
    for (MechanismKind kind :
         {MechanismKind::Lmi, MechanismKind::MemcheckDbi}) {
        SCOPED_TRACE(mechanismKindName(kind));
        const RunSnapshot serial = runOobAt(kind, 1);
        EXPECT_TRUE(serial.result.faulted());
        for (unsigned threads : {2u, 8u}) {
            SCOPED_TRACE("sim_threads=" + std::to_string(threads));
            expectIdentical(serial, runOobAt(kind, threads));
        }
    }
}

} // namespace
} // namespace lmi

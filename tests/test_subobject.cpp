/**
 * @file
 * Sub-object (intra-object) extension tests — the future-work item the
 * paper's Table III scores 0/3 for every mechanism, implemented here
 * using the spare debug-extent encodings 27..30 as sub-K field extents
 * (16/32/64/128 B).
 */

#include <gtest/gtest.h>

#include "core/extent_checker.hpp"
#include "core/ocu.hpp"
#include "ir/builder.hpp"
#include "ir/parser.hpp"
#include "mechanisms/registry.hpp"
#include "sim/device.hpp"

namespace lmi {
namespace {

using namespace ir;

TEST(SubExtent, CodecHelpers)
{
    EXPECT_TRUE(isSubExtent(27));
    EXPECT_TRUE(isSubExtent(30));
    EXPECT_FALSE(isSubExtent(26));
    EXPECT_FALSE(isSubExtent(31)); // the spatial poison stays reserved
    EXPECT_EQ(subExtentSize(27), 16u);
    EXPECT_EQ(subExtentSize(28), 32u);
    EXPECT_EQ(subExtentSize(29), 64u);
    EXPECT_EQ(subExtentSize(30), 128u);
    EXPECT_EQ(subExtentForSize(32), 28u);
    EXPECT_EQ(subExtentForSize(48), 0u);  // not a power of two
    EXPECT_EQ(subExtentForSize(256), 0u); // K-sized fields use normal extents
}

TEST(SubExtent, OcuEnforcesFieldBounds)
{
    const PointerCodec codec;
    Ocu ocu(codec, nullptr, /*sub_extents=*/true);
    // A 32 B field at a 32 B-aligned address.
    const uint64_t field =
        PointerCodec::poison(0x10020, subExtentForSize(32));
    EXPECT_FALSE(ocu.check(field, field + 31).violation);
    const OcuResult bad = ocu.check(field, field + 32);
    EXPECT_TRUE(bad.violation);
    EXPECT_EQ(PointerCodec::extentOf(bad.out), kPoisonSpatial);
}

TEST(SubExtent, DefaultOcuTreatsSubExtentsAsPoison)
{
    const PointerCodec codec;
    Ocu ocu(codec); // base LMI: 27..31 are all invalid
    const uint64_t field =
        PointerCodec::poison(0x10020, subExtentForSize(32));
    const OcuResult r = ocu.check(field, field + 4);
    EXPECT_FALSE(PointerCodec::isDereferenceable(r.out));
}

TEST(SubExtent, EcAcceptsSubExtentsOnlyWhenEnabled)
{
    const uint64_t field =
        PointerCodec::poison(0x10020, subExtentForSize(64));
    ExtentChecker base_ec;
    EXPECT_TRUE(base_ec.check(field).fault.has_value());
    ExtentChecker sub_ec(nullptr, /*sub_extents=*/true);
    EXPECT_FALSE(sub_ec.check(field).fault.has_value());
    // The poison marker still faults either way.
    const uint64_t poisoned = PointerCodec::poison(0x10020, kPoisonSpatial);
    EXPECT_TRUE(sub_ec.check(poisoned).fault.has_value());
}

/** struct { int a[8]; int b[8]; ... } on a 256 B global object:
 *  writes a[idx] through a field pointer. */
IrModule
structKernel()
{
    IrFunction f = IrBuilder::makeKernel(
        "intra", {{"obj", Type::ptr(4)}, {"idx", Type::i64()}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto field_a = b.fieldPtr(b.param(0), /*off=*/0, /*size=*/32);
    b.store(b.gep(field_a, b.param(1)), b.constInt(0xF1E1D, Type::i32()));
    b.ret();
    IrModule m;
    m.functions.push_back(std::move(f));
    return m;
}

TEST(SubExtent, IntraObjectOverflowDetectedEndToEnd)
{
    Device dev(makeMechanism(MechanismKind::LmiSubobject));
    const uint64_t obj = dev.cudaMalloc(256);
    const CompiledKernel k = dev.compile(structKernel(), "intra");

    // In-field access is clean.
    EXPECT_FALSE(dev.launch(k, 1, 1, {obj, 7}).faulted());
    EXPECT_EQ(dev.peek32(obj + 7 * 4), 0xF1E1Du);

    // a[8] lands in field b: the same allocation, so base LMI cannot see
    // it — the narrowed field extent can.
    const RunResult r = dev.launch(k, 1, 1, {obj, 8});
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.faults[0].kind, FaultKind::SpatialOverflow);
    EXPECT_EQ(dev.peek32(obj + 8 * 4), 0u); // delayed termination held
}

TEST(SubExtent, BaseLmiMissesTheSameOverflow)
{
    Device dev(makeMechanism(MechanismKind::Lmi));
    const uint64_t obj = dev.cudaMalloc(256);
    const CompiledKernel k = dev.compile(structKernel(), "intra");
    // Under base LMI the field pointer keeps the object's extent: a[8]
    // stays inside the 256 B object and passes (Table III: Intra 0).
    EXPECT_FALSE(dev.launch(k, 1, 1, {obj, 8}).faulted());
}

TEST(SubExtent, ObjectBoundsStillEnforced)
{
    // Escaping the whole object through the field pointer still faults.
    Device dev(makeMechanism(MechanismKind::LmiSubobject));
    const uint64_t obj = dev.cudaMalloc(256);
    const CompiledKernel k = dev.compile(structKernel(), "intra");
    EXPECT_TRUE(dev.launch(k, 1, 1, {obj, 4096}).faulted());
}

TEST(SubExtent, LargeFieldsFallBackToObjectExtent)
{
    // A 192 B field is not a representable sub-extent: the pointer keeps
    // the object's extent (coarse, like base LMI), and in-object access
    // works.
    IrFunction f = IrBuilder::makeKernel(
        "bigfield", {{"obj", Type::ptr(4)}, {"idx", Type::i64()}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto field = b.fieldPtr(b.param(0), 0, 192);
    b.store(b.gep(field, b.param(1)), b.constInt(1, Type::i32()));
    b.ret();
    IrModule m;
    m.functions.push_back(std::move(f));

    Device dev(makeMechanism(MechanismKind::LmiSubobject));
    const uint64_t obj = dev.cudaMalloc(256);
    const CompiledKernel k = dev.compile(m, "bigfield");
    EXPECT_FALSE(dev.launch(k, 1, 1, {obj, 50}).faulted());  // in field
    EXPECT_FALSE(dev.launch(k, 1, 1, {obj, 60}).faulted());  // coarse miss
    EXPECT_TRUE(dev.launch(k, 1, 1, {obj, 64}).faulted());   // off object
}

TEST(SubExtent, FieldGepParsesAndRoundTrips)
{
    const IrModule m = structKernel();
    const std::string once = m.functions[0].toString();
    EXPECT_NE(once.find("fieldgep"), std::string::npos);
    const IrFunction parsed = parseFunction(once);
    EXPECT_EQ(parsed.toString(), once);
}

TEST(SubExtent, MechanismRegistered)
{
    auto mech = makeMechanism(MechanismKind::LmiSubobject);
    EXPECT_EQ(mech->name(), "lmi+subobject");
}

} // namespace
} // namespace lmi

/**
 * @file
 * Unit and end-to-end tests for the static-analysis pipeline: the IR
 * verifier (malformed-IR fixtures), the interval domain (widening,
 * wrap-around saturation), the range analysis's safety classification,
 * the lint rules, and the elision path (proven-safe checks skipped,
 * seeded out-of-bounds accesses still caught via the UNKNOWN fallback).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "analysis/analysis.hpp"
#include "analysis/cfg.hpp"
#include "arch/microcode.hpp"
#include "compiler/codegen.hpp"
#include "ir/builder.hpp"
#include "mechanisms/registry.hpp"
#include "security/violations.hpp"
#include "sim/device.hpp"
#include "workloads/attacks.hpp"
#include "workloads/workloads.hpp"

namespace lmi {
namespace {

using namespace ir;
using analysis::AnalysisLevel;
using analysis::Diagnostic;
using analysis::Interval;
using analysis::SafetyClass;
using analysis::Severity;

bool
hasDiag(const std::vector<Diagnostic>& diags, const std::string& needle)
{
    for (const Diagnostic& d : diags)
        if (d.message.find(needle) != std::string::npos)
            return true;
    return false;
}

IrModule
singleKernelModule(IrFunction f)
{
    IrModule m;
    m.functions.push_back(std::move(f));
    return m;
}

// ---------------------------------------------------------------------
// IR verifier: malformed-IR fixtures.
// ---------------------------------------------------------------------

TEST(Verify, CleanKernelHasNoDiagnostics)
{
    IrFunction f = IrBuilder::makeKernel(
        "clean", {{"in", Type::ptr(4)}, {"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto t = b.gtid();
    auto v = b.load(b.gep(b.param(0), t));
    b.store(b.gep(b.param(1), t), v);
    b.ret();
    EXPECT_TRUE(analysis::verifyFunction(f).empty());
}

TEST(Verify, RejectsEmptyBlock)
{
    IrFunction f = IrBuilder::makeKernel("empty", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    b.ret();
    f.blocks.push_back({"dead", {}});
    EXPECT_TRUE(hasDiag(analysis::verifyFunction(f), "is empty"));
}

TEST(Verify, RejectsMissingTerminator)
{
    IrFunction f = IrBuilder::makeKernel("noterm", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    b.constInt(7);
    EXPECT_TRUE(hasDiag(analysis::verifyFunction(f),
                        "does not end in a terminator"));
}

TEST(Verify, RejectsTerminatorMidBlock)
{
    IrFunction f = IrBuilder::makeKernel("midterm", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    b.ret();
    b.constInt(7); // appended after the terminator
    EXPECT_TRUE(hasDiag(analysis::verifyFunction(f),
                        "terminator in the middle"));
}

TEST(Verify, RejectsDoubleScheduledValue)
{
    IrFunction f = IrBuilder::makeKernel("twice", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto c = b.constInt(7);
    b.ret();
    f.blocks[0].insts.insert(f.blocks[0].insts.begin(), c);
    EXPECT_TRUE(hasDiag(analysis::verifyFunction(f),
                        "scheduled more than once"));
}

TEST(Verify, RejectsPhiInEntryBlock)
{
    IrFunction f = IrBuilder::makeKernel("entryphi", {});
    IrBuilder b(f);
    auto entry = b.block("entry");
    b.setInsertPoint(entry);
    auto c = b.constInt(1);
    b.phi(Type::i64(), {{c, entry}});
    b.ret();
    EXPECT_TRUE(hasDiag(analysis::verifyFunction(f),
                        "phi in the entry block"));
}

TEST(Verify, RejectsPhiAfterNonPhi)
{
    IrFunction f = IrBuilder::makeKernel("latephi", {});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto body = b.block("body");
    b.setInsertPoint(entry);
    auto c = b.constInt(1);
    b.jump(body);
    b.setInsertPoint(body);
    // The builder auto-leads phis, so force the malformation by hand:
    // schedule a non-phi ahead of the phi after construction.
    b.phi(Type::i64(), {{c, entry}});
    b.constInt(2);
    b.ret();
    std::swap(f.blocks[body].insts[0], f.blocks[body].insts[1]);
    EXPECT_TRUE(hasDiag(analysis::verifyFunction(f),
                        "phi does not lead block"));
}

TEST(Verify, RejectsPhiFromNonPredecessor)
{
    IrFunction f = IrBuilder::makeKernel("badpred", {});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto body = b.block("body");
    auto stranger = b.block("stranger");
    b.setInsertPoint(entry);
    auto c = b.constInt(1);
    b.jump(body);
    b.setInsertPoint(body);
    b.phi(Type::i64(), {{c, stranger}});
    b.ret();
    b.setInsertPoint(stranger);
    b.ret();
    const auto diags = analysis::verifyFunction(f);
    EXPECT_TRUE(hasDiag(diags, "is not a predecessor"));
    EXPECT_TRUE(hasDiag(diags, "misses incoming value"));
}

TEST(Verify, RejectsPhiIncomingTypeMismatch)
{
    IrFunction f = IrBuilder::makeKernel("mistyped", {});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto body = b.block("body");
    b.setInsertPoint(entry);
    auto c = b.constFloat(1.0);
    b.jump(body);
    b.setInsertPoint(body);
    b.phi(Type::i64(), {{c, entry}});
    b.ret();
    EXPECT_TRUE(hasDiag(analysis::verifyFunction(f), "has type f32"));
}

TEST(Verify, RejectsUseNotDominatedByDef)
{
    IrFunction f = IrBuilder::makeKernel("nodom", {{"n", Type::i64()}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto then_bb = b.block("then");
    auto else_bb = b.block("else");
    b.setInsertPoint(entry);
    auto n = b.param(0);
    auto c = b.icmp(CmpOp::LT, n, b.constInt(4));
    b.br(c, then_bb, else_bb);
    b.setInsertPoint(then_bb);
    auto x = b.constInt(42);
    b.ret();
    b.setInsertPoint(else_bb);
    b.iadd(x, x); // x defined only on the then path
    b.ret();
    EXPECT_TRUE(hasDiag(analysis::verifyFunction(f),
                        "not dominated by its definition"));
}

TEST(Verify, RejectsComparisonConsumedByArithmetic)
{
    IrFunction f = IrBuilder::makeKernel("cmpuse", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto c = b.icmp(CmpOp::EQ, b.constInt(1), b.constInt(2));
    b.iadd(c, b.constInt(1)); // the backend cannot materialize c
    b.ret();
    EXPECT_TRUE(hasDiag(analysis::verifyFunction(f),
                        "icmp results may only guard branches"));
}

TEST(Verify, RejectsBranchGuardThatIsNotAComparison)
{
    IrFunction f = IrBuilder::makeKernel("badguard", {});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto t = b.block("t");
    auto e = b.block("e");
    b.setInsertPoint(entry);
    b.br(b.constInt(1), t, e);
    b.setInsertPoint(t);
    b.ret();
    b.setInsertPoint(e);
    b.ret();
    EXPECT_TRUE(hasDiag(analysis::verifyFunction(f),
                        "is not a comparison"));
}

TEST(Verify, RejectsFloatOperandInIntegerArithmetic)
{
    // The exact latent malformation the workload generator carried:
    // xor-folding an f32 chain into an integer without a bit cast.
    IrFunction f = IrBuilder::makeKernel("floatmix", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto x = b.constInt(1);
    auto fv = b.constFloat(1.5);
    b.ixor(x, fv);
    b.ret();
    EXPECT_TRUE(hasDiag(analysis::verifyFunction(f),
                        "has non-integer type f32"));

    // fbits makes the same fold type-correct.
    IrFunction g = IrBuilder::makeKernel("bitsmix", {});
    IrBuilder bg(g);
    bg.setInsertPoint(bg.block("entry"));
    bg.ixor(bg.constInt(1), bg.fbits(bg.constFloat(1.5)));
    bg.ret();
    EXPECT_TRUE(analysis::verifyFunction(g).empty());
}

TEST(Verify, RejectsAddOfTwoPointers)
{
    IrFunction f = IrBuilder::makeKernel(
        "twoptr", {{"a", Type::ptr(4)}, {"b", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    b.iadd(b.param(0), b.param(1));
    b.ret();
    EXPECT_TRUE(hasDiag(analysis::verifyFunction(f),
                        "two pointer operands"));
}

TEST(Verify, RejectsRetValueInVoidFunction)
{
    IrFunction f = IrBuilder::makeKernel("voidret", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    b.retVal(b.constInt(1));
    EXPECT_TRUE(hasDiag(analysis::verifyFunction(f),
                        "ret with a value in a void function"));
}

TEST(Verify, ModuleRejectsCallToUnknownFunction)
{
    IrFunction f = IrBuilder::makeKernel("caller", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    b.call("nothere", Type::voidTy(), {});
    b.ret();
    EXPECT_TRUE(hasDiag(analysis::verifyModule(singleKernelModule(
                            std::move(f))),
                        "call to unknown function"));
}

TEST(Verify, LmiInvariantsAreOptIn)
{
    IrFunction f = IrBuilder::makeKernel("casty", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto p = b.intToPtr(b.constInt(0x1000), Type::ptr(4));
    b.ptrToInt(p);
    b.ret();
    EXPECT_TRUE(analysis::verifyFunction(f).empty());
    analysis::VerifyOptions opts;
    opts.lmi_invariants = true;
    const auto diags = analysis::verifyFunction(f, opts);
    EXPECT_TRUE(hasDiag(diags, "inttoptr"));
    EXPECT_TRUE(hasDiag(diags, "ptrtoint"));
}

// ---------------------------------------------------------------------
// Interval domain.
// ---------------------------------------------------------------------

TEST(Interval, JoinIsTheHull)
{
    const Interval a = Interval::range(0, 10);
    const Interval b = Interval::range(5, 20);
    EXPECT_EQ(a.join(b), Interval::range(0, 20));
    EXPECT_EQ(Interval::range(-3, 1).join(Interval::of(7)),
              Interval::range(-3, 7));
}

TEST(Interval, WideningJumpsGrowingBoundsToInfinity)
{
    const Interval old = Interval::range(0, 10);
    const Interval grown = old.widen(old.join(Interval::range(0, 11)));
    EXPECT_EQ(grown.lo, 0);
    EXPECT_EQ(grown.hi, INT64_MAX);
    // A stable bound stays put.
    EXPECT_EQ(old.widen(old), old);
}

TEST(Interval, WrapAroundSaturatesToFull)
{
    // The simulated ALU wraps mod 2^64; a clamped interval would be
    // unsound, so any possible overflow degrades to full.
    EXPECT_TRUE(Interval::add(Interval::of(INT64_MAX), Interval::of(1))
                    .isFull());
    EXPECT_TRUE(Interval::sub(Interval::of(INT64_MIN), Interval::of(1))
                    .isFull());
    EXPECT_TRUE(
        Interval::mul(Interval::of(INT64_MAX / 2), Interval::of(3))
            .isFull());
    EXPECT_TRUE(Interval::shl(Interval::of(1), Interval::of(63)).isFull());
    // In-range arithmetic stays exact.
    EXPECT_EQ(Interval::add(Interval::range(1, 2), Interval::range(3, 4)),
              Interval::range(4, 6));
}

TEST(Interval, MaskingBoundsAnyValue)
{
    EXPECT_EQ(Interval::and_(Interval::full(), Interval::of(15)),
              Interval::range(0, 15));
    EXPECT_EQ(Interval::orLike(Interval::range(0, 5),
                               Interval::range(0, 9)),
              Interval::range(0, 15));
    // A negative operand defeats the signed reading of a shift.
    EXPECT_TRUE(Interval::shr(Interval::range(-1, 5), Interval::of(1))
                    .isFull());
}

// ---------------------------------------------------------------------
// Range analysis: safety classification.
// ---------------------------------------------------------------------

TEST(RangeAnalysis, ConstantInBoundsGepIsProvenSafe)
{
    IrFunction f = IrBuilder::makeKernel("inb", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto buf = b.alloca_(256, 4);
    auto slot = b.gep(buf, b.constInt(3)); // offset 12 of 256
    b.store(slot, b.constInt(1, Type::i32()));
    b.ret();
    const analysis::RangeAnalysis ra = analysis::analyzeRanges(f);
    EXPECT_EQ(ra.safety.at(slot), SafetyClass::ProvenSafe);
    EXPECT_TRUE(ra.diagnostics.empty());
}

TEST(RangeAnalysis, ParamPointerGepIsUnknown)
{
    IrFunction f = IrBuilder::makeKernel("unk", {{"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto slot = b.gep(b.param(0), b.gtid());
    b.store(slot, b.constInt(1, Type::i32()));
    b.ret();
    const analysis::RangeAnalysis ra = analysis::analyzeRanges(f);
    EXPECT_EQ(ra.safety.at(slot), SafetyClass::Unknown);
}

TEST(RangeAnalysis, ConstantEscapeIsProvenViolating)
{
    IrFunction f = IrBuilder::makeKernel("oob", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto buf = b.alloca_(256, 4);
    auto bad = b.gep(buf, b.constInt(128)); // offset 512, extent 256
    b.store(bad, b.constInt(1, Type::i32()));
    b.ret();
    const analysis::RangeAnalysis ra = analysis::analyzeRanges(f);
    EXPECT_EQ(ra.safety.at(bad), SafetyClass::ProvenViolating);
    ASSERT_FALSE(ra.diagnostics.empty());
    EXPECT_EQ(ra.diagnostics[0].severity, Severity::Error);
    EXPECT_TRUE(hasDiag(ra.diagnostics, "provably escapes"));
}

TEST(RangeAnalysis, MaskedLoopIndexIsProvenSafeDespiteWidening)
{
    // i widens to +inf around the loop, but i & 15 stays in [0, 15],
    // so the tile access is proven even with an unknown trip count.
    IrFunction f = IrBuilder::makeKernel("loop", {{"n", Type::i64()}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto body = b.block("body");
    auto exit = b.block("exit");
    b.setInsertPoint(entry);
    auto n = b.param(0);
    auto zero = b.constInt(0);
    auto buf = b.alloca_(256, 4);
    b.jump(body);
    b.setInsertPoint(body);
    auto i = b.phi(Type::i64(), {{zero, entry}});
    auto idx = b.iand(i, b.constInt(15));
    auto slot = b.gep(buf, idx); // offsets [0, 60] of 256
    b.store(slot, b.constInt(1, Type::i32()));
    auto next = b.iadd(i, b.constInt(1));
    f.inst(i).ops.push_back(next);
    f.inst(i).phi_blocks.push_back(body);
    auto more = b.icmp(CmpOp::LT, next, n);
    b.br(more, body, exit);
    b.setInsertPoint(exit);
    b.ret();

    const analysis::RangeAnalysis ra = analysis::analyzeRanges(f);
    EXPECT_EQ(ra.safety.at(slot), SafetyClass::ProvenSafe);
    // The unmasked induction variable itself is widened to top (the
    // increment overflows once the upper bound hits +inf), not proven.
    EXPECT_TRUE(ra.ranges.at(i).isFull());
}

TEST(RangeAnalysis, ZeroDeltaIsProvenSafeForAnyProvenance)
{
    // Adding zero is an identity update: bit-identical result whatever
    // the input pointer is, so even a parameter pointer qualifies.
    IrFunction f = IrBuilder::makeKernel("ident", {{"p", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto moved = b.ptrAddBytes(b.param(0), b.constInt(0));
    b.store(moved, b.constInt(1, Type::i32()));
    b.ret();
    const analysis::RangeAnalysis ra = analysis::analyzeRanges(f);
    EXPECT_EQ(ra.safety.at(moved), SafetyClass::ProvenSafe);
}

TEST(RangeAnalysis, SaturatedAllocationIsNeverProven)
{
    // Larger than the codec maximum: extent 0, nothing provable.
    IrFunction f = IrBuilder::makeKernel("sat", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto buf = b.alloca_(uint64_t(1) << 34, 4);
    auto slot = b.gep(buf, b.constInt(1));
    b.store(slot, b.constInt(1, Type::i32()));
    b.ret();
    const analysis::RangeAnalysis ra = analysis::analyzeRanges(f);
    EXPECT_EQ(ra.safety.at(slot), SafetyClass::Unknown);
}

// ---------------------------------------------------------------------
// Lint.
// ---------------------------------------------------------------------

TEST(Lint, WarnsOnPointerPhiMixingAllocations)
{
    IrFunction f = IrBuilder::makeKernel("mix", {{"n", Type::i64()}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto t = b.block("t");
    auto e = b.block("e");
    auto m = b.block("m");
    b.setInsertPoint(entry);
    auto a1 = b.alloca_(64, 4);
    auto a2 = b.alloca_(64, 4);
    auto c = b.icmp(CmpOp::LT, b.param(0), b.constInt(4));
    b.br(c, t, e);
    b.setInsertPoint(t);
    b.jump(m);
    b.setInsertPoint(e);
    b.jump(m);
    b.setInsertPoint(m);
    auto p = b.phi(f.inst(a1).type, {{a1, t}, {a2, e}});
    b.store(p, b.constInt(1, Type::i32()));
    b.ret();
    EXPECT_TRUE(hasDiag(analysis::lintFunction(f),
                        "merges 2 distinct allocations"));
}

TEST(Lint, WarnsOnUseAfterFree)
{
    IrFunction f = IrBuilder::makeKernel("uaf", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto hp = b.malloc_(b.constInt(256), 4);
    b.free_(hp);
    b.load(b.gep(hp, b.constInt(0))); // dead-extent pointer
    b.ret();
    EXPECT_TRUE(hasDiag(analysis::lintFunction(f),
                        "after free nullified its extent"));
}

TEST(Lint, WarnsOnExtentSaturation)
{
    IrFunction f = IrBuilder::makeKernel("big", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    b.alloca_(uint64_t(1) << 34, 4);
    b.ret();
    EXPECT_TRUE(hasDiag(analysis::lintFunction(f),
                        "the extent saturates to an invalid encoding"));
}

// ---------------------------------------------------------------------
// Pipeline driver + compiler integration.
// ---------------------------------------------------------------------

TEST(AnalysisPipeline, VerifierErrorsStopLaterPasses)
{
    IrFunction f = IrBuilder::makeKernel("stop", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    b.ixor(b.constInt(1), b.constFloat(1.5)); // malformed
    b.ret();
    analysis::AnalysisOptions opts;
    opts.level = AnalysisLevel::Full;
    const analysis::AnalysisReport report = analysis::analyzeFunction(f,
                                                                      opts);
    EXPECT_GT(report.errors(), 0u);
    EXPECT_TRUE(report.safety.empty());
}

TEST(AnalysisPipeline, CompileKernelRejectsMalformedIr)
{
    IrFunction f = IrBuilder::makeKernel("badk", {{"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    b.ixor(b.constInt(1), b.constFloat(1.5));
    b.ret();
    CodegenOptions opts;
    opts.analysis_level = AnalysisLevel::Verify;
    EXPECT_THROW(compileKernel(singleKernelModule(std::move(f)), "badk",
                               opts),
                 CompileError);
}

TEST(AnalysisPipeline, ElideMechanismRejectsProvenViolation)
{
    IrFunction f = IrBuilder::makeKernel("escape", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto buf = b.alloca_(256, 4);
    b.store(b.gep(buf, b.constInt(128)), b.constInt(1, Type::i32()));
    b.ret();
    Device dev(makeMechanism(MechanismKind::LmiElide));
    EXPECT_THROW(dev.compile(singleKernelModule(std::move(f)), "escape"),
                 CompileError);
}

TEST(AnalysisPipeline, ProvenSafeOpsGetTheElideHint)
{
    IrFunction f = IrBuilder::makeKernel("hinted",
                                         {{"out", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto buf = b.alloca_(256, 4);
    auto safe = b.gep(buf, b.constInt(3));
    b.store(safe, b.constInt(1, Type::i32()));
    auto unknown = b.gep(b.param(0), b.gtid());
    b.store(unknown, b.constInt(2, Type::i32()));
    b.ret();
    CodegenOptions opts;
    opts.lmi = true;
    opts.stack_policy = AllocPolicy::Pow2Aligned;
    opts.analysis_level = AnalysisLevel::Full;
    const CompiledKernel ck =
        compileKernel(singleKernelModule(std::move(f)), "hinted", opts);
    EXPECT_GE(ck.report.proven_safe, 1u);
    EXPECT_GE(ck.report.unknown, 1u);
    unsigned elided = 0, kept = 0;
    for (const Instruction& inst : ck.program.code) {
        if (!inst.hints.active)
            continue;
        (inst.hints.elide_check ? elided : kept)++;
        // The E bit survives the 128-bit microcode round trip.
        EXPECT_EQ(unpackMicrocode(packMicrocode(inst)).hints.elide_check,
                  inst.hints.elide_check);
    }
    EXPECT_GE(elided, 1u);
    EXPECT_GE(kept, 1u);
}

TEST(Microcode, ElisionBitRoundTrips)
{
    Instruction inst;
    inst.op = Opcode::IADD;
    inst.dst = 4;
    inst.src[0] = Operand::reg(5);
    inst.src[1] = Operand::reg(6);
    inst.hints = {true, 1, true};
    const Microcode mc = packMicrocode(inst);
    EXPECT_TRUE(mc.elisionBit());
    const Instruction back = unpackMicrocode(mc);
    EXPECT_TRUE(back.hints.active);
    EXPECT_TRUE(back.hints.elide_check);
    inst.hints.elide_check = false;
    EXPECT_FALSE(packMicrocode(inst).elisionBit());
}

// ---------------------------------------------------------------------
// End-to-end: every workload verifies; elision preserves semantics.
// ---------------------------------------------------------------------

TEST(AnalysisEndToEnd, AllWorkloadKernelsVerifyClean)
{
    analysis::AnalysisOptions opts;
    opts.level = AnalysisLevel::Full;
    for (const WorkloadProfile& profile : workloadSuite()) {
        const IrModule m = buildWorkloadKernel(profile);
        const IrFunction flat = inlineCalls(m, *m.find(profile.name));
        const analysis::AnalysisReport report =
            analysis::analyzeFunction(flat, opts);
        EXPECT_TRUE(report.diagnostics.empty())
            << profile.name << ": "
            << (report.diagnostics.empty()
                    ? ""
                    : report.diagnostics[0].toString());
        EXPECT_GT(report.proven_safe, 0u) << profile.name;
    }
}

TEST(AnalysisEndToEnd, ElisionKeepsWorkloadResultsByteIdentical)
{
    const WorkloadProfile& profile = findWorkload("lud_cuda");
    WorkloadProfile p = profile;
    p.grid_blocks = 8;
    const uint64_t elems = p.elements();

    auto run = [&](MechanismKind kind, std::vector<uint32_t>* out_data,
                   uint64_t* elided) {
        Device dev(makeMechanism(kind));
        const uint64_t in = dev.cudaMalloc(elems * 4 + 64);
        const uint64_t out = dev.cudaMalloc(elems * 4 + 64);
        std::vector<uint32_t> seed(elems);
        for (uint64_t i = 0; i < elems; ++i)
            seed[i] = uint32_t(i * 2654435761u + 99u);
        dev.memcpyHtoD(in, seed.data(), elems * 4);
        const CompiledKernel k = dev.compile(buildWorkloadKernel(p),
                                             p.name);
        const RunResult r = dev.launch(k, p.grid_blocks, p.block_threads,
                                       {in, out, elems});
        EXPECT_FALSE(r.faulted());
        out_data->resize(elems);
        dev.memcpyDtoH(out_data->data(), out, elems * 4);
        *elided = dev.stats().counter("ocu.checks_elided");
    };

    std::vector<uint32_t> lmi_out, elide_out;
    uint64_t lmi_elided = 0, elide_elided = 0;
    run(MechanismKind::Lmi, &lmi_out, &lmi_elided);
    run(MechanismKind::LmiElide, &elide_out, &elide_elided);
    EXPECT_EQ(lmi_elided, 0u);
    EXPECT_GT(elide_elided, 0u);
    EXPECT_EQ(lmi_out, elide_out);
}

TEST(AnalysisEndToEnd, SeededOobStillFaultsUnderElision)
{
    // A parameter pointer has unknown provenance, so its checks are
    // never elided: the OCU still poisons the escaped pointer and the
    // dereference faults.
    IrFunction f = IrBuilder::makeKernel(
        "oob", {{"out", Type::ptr(4)}, {"n", Type::i64()}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto bad = b.gep(b.param(0), b.param(1));
    b.store(bad, b.constInt(0xDEAD, Type::i32()));
    b.ret();

    Device dev(makeMechanism(MechanismKind::LmiElide));
    const uint64_t out = dev.cudaMalloc(1024);
    const CompiledKernel k =
        dev.compile(singleKernelModule(std::move(f)), "oob");
    const RunResult r = dev.launch(k, 1, 32, {out, 1 << 20});
    EXPECT_TRUE(r.faulted());
}

TEST(AnalysisEndToEnd, ElisionNeverRegressesSecurityDetection)
{
    for (const ViolationCase& c : violationSuite()) {
        Device lmi_dev(makeMechanism(MechanismKind::Lmi));
        Device elide_dev(makeMechanism(MechanismKind::LmiElide));
        const bool lmi_hit = c.run(lmi_dev).detected();
        const bool elide_hit = c.run(elide_dev).detected();
        EXPECT_EQ(lmi_hit, elide_hit) << c.id;
    }
}

// ---------------------------------------------------------------------
// CFG dominance/postdominance edge cases.
// ---------------------------------------------------------------------

TEST(Cfg, UnreachableBlockHasNoRpoPositionAndVacuousDominance)
{
    // entry -> exit, plus an orphan block no edge reaches.
    IrFunction f = IrBuilder::makeKernel("orphan", {});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto exit = b.block("exit");
    auto orphan = b.block("orphan");

    b.setInsertPoint(entry);
    b.jump(exit);
    b.setInsertPoint(exit);
    b.ret();
    b.setInsertPoint(orphan);
    b.ret();

    const analysis::Cfg cfg = analysis::Cfg::build(f);
    EXPECT_TRUE(cfg.reachable(entry));
    EXPECT_TRUE(cfg.reachable(exit));
    EXPECT_FALSE(cfg.reachable(orphan));
    EXPECT_EQ(cfg.rpo_index[orphan], -1);
    EXPECT_EQ(cfg.idom[orphan], -1);
    // LLVM convention: everything dominates an unreachable block.
    EXPECT_TRUE(cfg.dominates(entry, orphan));
    EXPECT_TRUE(cfg.dominates(exit, orphan));
    // But the orphan dominates no reachable block (except vacuously
    // itself), and never postdominates the entry.
    EXPECT_FALSE(cfg.dominates(orphan, entry));
    EXPECT_TRUE(cfg.dominates(orphan, orphan));
    EXPECT_FALSE(cfg.postDominates(orphan, entry));
}

TEST(Cfg, SingleBlockSelfLoopPostdominatesOnlyItself)
{
    // entry -> loop; loop -> loop | exit. The self-loop block is on a
    // cycle but still reaches the exit, so exit postdominates it; the
    // loop block postdominates neither entry's other successors nor
    // anything below it.
    IrFunction f = IrBuilder::makeKernel("selfloop", {{"n", Type::i64()}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto loop = b.block("loop");
    auto exit = b.block("exit");

    b.setInsertPoint(entry);
    auto n = b.param(0);
    b.jump(loop);

    b.setInsertPoint(loop);
    auto i = b.phi(Type::i64(), {{b.constInt(0), entry}});
    auto next = b.iadd(i, b.constInt(1));
    f.inst(i).ops.push_back(next);
    f.inst(i).phi_blocks.push_back(loop);
    auto cont = b.icmp(CmpOp::LT, next, n);
    b.br(cont, loop, exit);

    b.setInsertPoint(exit);
    b.ret();

    const analysis::Cfg cfg = analysis::Cfg::build(f);
    EXPECT_TRUE(cfg.reaches_exit[loop]);
    EXPECT_TRUE(cfg.dominates(loop, exit));
    EXPECT_TRUE(cfg.postDominates(exit, loop));
    EXPECT_TRUE(cfg.postDominates(loop, entry));
    EXPECT_TRUE(cfg.postDominates(loop, loop));
    EXPECT_FALSE(cfg.postDominates(entry, loop));
    // The self edge must appear in both adjacency directions.
    EXPECT_NE(std::find(cfg.succs[loop].begin(), cfg.succs[loop].end(),
                        loop),
              cfg.succs[loop].end());
    EXPECT_NE(std::find(cfg.preds[loop].begin(), cfg.preds[loop].end(),
                        loop),
              cfg.preds[loop].end());
}

TEST(Cfg, InfiniteSelfLoopPostdominatedOnlyByItself)
{
    // entry -> spin; spin -> spin. No exit is reachable from spin.
    IrFunction f = IrBuilder::makeKernel("spin", {});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto spin = b.block("spin");

    b.setInsertPoint(entry);
    b.jump(spin);
    b.setInsertPoint(spin);
    b.jump(spin);

    const analysis::Cfg cfg = analysis::Cfg::build(f);
    EXPECT_FALSE(cfg.reaches_exit[spin]);
    EXPECT_EQ(cfg.ipdom[spin], -1);
    EXPECT_TRUE(cfg.postDominates(spin, spin));
    EXPECT_FALSE(cfg.postDominates(entry, spin));
    EXPECT_FALSE(cfg.postDominates(spin, entry));
}

TEST(Cfg, PhiFreeDiamondMergePostdominatesBothArms)
{
    // entry -> {left, right} -> merge -> (ret). Neither arm carries a
    // phi; dominance and postdominance must still see the diamond.
    IrFunction f = IrBuilder::makeKernel("diamond", {{"n", Type::i64()}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto left = b.block("left");
    auto right = b.block("right");
    auto merge = b.block("merge");

    b.setInsertPoint(entry);
    auto cond = b.icmp(CmpOp::LT, b.param(0), b.constInt(10));
    b.br(cond, left, right);

    b.setInsertPoint(left);
    b.jump(merge);
    b.setInsertPoint(right);
    b.jump(merge);
    b.setInsertPoint(merge);
    b.ret();

    const analysis::Cfg cfg = analysis::Cfg::build(f);
    EXPECT_TRUE(cfg.dominates(entry, merge));
    EXPECT_FALSE(cfg.dominates(left, merge));
    EXPECT_FALSE(cfg.dominates(right, merge));
    EXPECT_EQ(cfg.idom[merge], int(entry));
    EXPECT_TRUE(cfg.postDominates(merge, entry));
    EXPECT_TRUE(cfg.postDominates(merge, left));
    EXPECT_TRUE(cfg.postDominates(merge, right));
    EXPECT_FALSE(cfg.postDominates(left, entry));
    EXPECT_FALSE(cfg.postDominates(right, entry));
    // ipdom of both arms is the merge; ipdom of the merge is the
    // virtual exit (-1).
    EXPECT_EQ(cfg.ipdom[left], int(merge));
    EXPECT_EQ(cfg.ipdom[right], int(merge));
    EXPECT_EQ(cfg.ipdom[merge], -1);
}

// ---------------------------------------------------------------------
// Safety oracle: temporal automaton, field windows, verdict lattice.
// ---------------------------------------------------------------------

using analysis::AccessVerdict;

/** Verdict of the single access performed through @p build's last
 *  store. Convenience: run the oracle, return the verdict of the only
 *  access whose id matches @p access. */
analysis::AccessWitness
witnessOf(const IrFunction& f, ValueId access)
{
    const analysis::SafetyOracleReport report = analysis::analyzeSafety(f);
    auto it = report.accesses.find(access);
    EXPECT_TRUE(it != report.accesses.end());
    return it == report.accesses.end() ? analysis::AccessWitness{}
                                       : it->second;
}

TEST(Oracle, StoreBeforeFreeIsProvenSafe)
{
    IrFunction f = IrBuilder::makeKernel("prefree", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto p = b.malloc_(b.constInt(256), 4);
    b.store(b.gep(p, b.constInt(3)), b.constInt(1, Type::i32()));
    const ValueId access = f.blocks[0].insts[f.blocks[0].insts.size() - 1];
    b.free_(p);
    b.ret();
    EXPECT_EQ(witnessOf(f, access).verdict, AccessVerdict::ProvenSafe);
}

TEST(Oracle, StoreAfterFreeIsTemporalUaf)
{
    IrFunction f = IrBuilder::makeKernel("postfree", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto p = b.malloc_(b.constInt(256), 4);
    b.free_(p);
    b.store(b.gep(p, b.constInt(0)), b.constInt(1, Type::i32()));
    const ValueId access = f.blocks[0].insts[f.blocks[0].insts.size() - 1];
    b.ret();
    const analysis::AccessWitness w = witnessOf(f, access);
    EXPECT_EQ(w.verdict, AccessVerdict::TemporalUAF);
    // The witness names the invalidating free.
    EXPECT_NE(w.invalidated_by, kNoValue);
    EXPECT_EQ(f.inst(w.invalidated_by).op, IrOp::Free);
}

TEST(Oracle, StoreAfterScopeEndIsTemporalUaf)
{
    IrFunction f = IrBuilder::makeKernel("postscope", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto buf = b.alloca_(256, 4);
    // Hand-plant the ScopeEnd the inliner would emit for a callee
    // frame.
    IrInst scope_end;
    scope_end.op = IrOp::ScopeEnd;
    scope_end.type = Type::voidTy();
    scope_end.ops = {buf};
    f.values.push_back(scope_end);
    f.blocks[0].insts.push_back(ValueId(f.values.size() - 1));
    b.store(b.gep(buf, b.constInt(0)), b.constInt(1, Type::i32()));
    const ValueId access = f.blocks[0].insts[f.blocks[0].insts.size() - 1];
    b.ret();
    EXPECT_EQ(witnessOf(f, access).verdict, AccessVerdict::TemporalUAF);
}

TEST(Oracle, FreeInOneBranchJoinsToUnknown)
{
    // Invalidated (then-branch) ⊔ Live (else-branch) = Top: the access
    // after the merge is neither provably dead nor provably live.
    IrFunction f =
        IrBuilder::makeKernel("branchfree", {{"c", Type::i64()}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto then_bb = b.block("then");
    auto else_bb = b.block("else");
    auto merge = b.block("merge");
    b.setInsertPoint(entry);
    auto p = b.malloc_(b.constInt(256), 4);
    auto c = b.icmp(CmpOp::NE, b.param(0), b.constInt(0));
    b.br(c, then_bb, else_bb);
    b.setInsertPoint(then_bb);
    b.free_(p);
    b.jump(merge);
    b.setInsertPoint(else_bb);
    b.jump(merge);
    b.setInsertPoint(merge);
    b.store(b.gep(p, b.constInt(0)), b.constInt(1, Type::i32()));
    const ValueId access =
        f.blocks[merge].insts[f.blocks[merge].insts.size() - 1];
    b.ret();
    EXPECT_EQ(witnessOf(f, access).verdict, AccessVerdict::Unknown);
}

TEST(Oracle, FreeInBothBranchesIsTemporalUaf)
{
    IrFunction f =
        IrBuilder::makeKernel("bothfree", {{"c", Type::i64()}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto then_bb = b.block("then");
    auto else_bb = b.block("else");
    auto merge = b.block("merge");
    b.setInsertPoint(entry);
    auto p = b.malloc_(b.constInt(256), 4);
    auto c = b.icmp(CmpOp::NE, b.param(0), b.constInt(0));
    b.br(c, then_bb, else_bb);
    b.setInsertPoint(then_bb);
    b.free_(p);
    b.jump(merge);
    b.setInsertPoint(else_bb);
    b.free_(p);
    b.jump(merge);
    b.setInsertPoint(merge);
    b.store(b.gep(p, b.constInt(0)), b.constInt(1, Type::i32()));
    const ValueId access =
        f.blocks[merge].insts[f.blocks[merge].insts.size() - 1];
    b.ret();
    EXPECT_EQ(witnessOf(f, access).verdict, AccessVerdict::TemporalUAF);
}

TEST(Oracle, ReallocInOneBranchOnlyJoinsToUnknown)
{
    // free on both paths, but only one path re-mallocs: the site joins
    // Invalidated ⊔ Reallocated = still dead — the access is a UAF
    // either way. The one-branch-realloc edge case from the issue.
    IrFunction f =
        IrBuilder::makeKernel("branchrealloc", {{"c", Type::i64()}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto then_bb = b.block("then");
    auto else_bb = b.block("else");
    auto merge = b.block("merge");
    b.setInsertPoint(entry);
    auto p = b.malloc_(b.constInt(256), 4);
    b.free_(p);
    auto c = b.icmp(CmpOp::NE, b.param(0), b.constInt(0));
    b.br(c, then_bb, else_bb);
    b.setInsertPoint(then_bb);
    auto q = b.malloc_(b.constInt(256), 4); // may reuse p's chunk
    b.store(b.gep(q, b.constInt(0)), b.constInt(1, Type::i32()));
    b.jump(merge);
    b.setInsertPoint(else_bb);
    b.jump(merge);
    b.setInsertPoint(merge);
    b.store(b.gep(p, b.constInt(0)), b.constInt(2, Type::i32()));
    const ValueId access =
        f.blocks[merge].insts[f.blocks[merge].insts.size() - 1];
    b.ret();
    EXPECT_EQ(witnessOf(f, access).verdict, AccessVerdict::TemporalUAF);
}

TEST(Oracle, LoopCarriedFreeJoinsToUnknown)
{
    // Live (entry edge) ⊔ Invalidated (back edge after the in-loop
    // free) = Top: the in-loop access before the free is not provably
    // safe — on iteration 2 it dereferences the pointer freed by
    // iteration 1. The loop-carried Invalidated ⊔ Live edge case.
    IrFunction f = IrBuilder::makeKernel("loopfree", {{"n", Type::i64()}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto loop = b.block("loop");
    auto exit = b.block("exit");
    b.setInsertPoint(entry);
    auto p = b.malloc_(b.constInt(256), 4);
    b.jump(loop);
    b.setInsertPoint(loop);
    auto i = b.phi(Type::i64(), {{b.constInt(0), entry}});
    b.store(b.gep(p, b.constInt(0)), b.constInt(1, Type::i32()));
    const ValueId access =
        f.blocks[loop].insts[f.blocks[loop].insts.size() - 1];
    b.free_(p);
    auto next = b.iadd(i, b.constInt(1));
    f.inst(i).ops.push_back(next);
    f.inst(i).phi_blocks.push_back(loop);
    auto done = b.icmp(CmpOp::LT, next, b.param(0));
    b.br(done, loop, exit);
    b.setInsertPoint(exit);
    b.ret();
    EXPECT_EQ(witnessOf(f, access).verdict, AccessVerdict::Unknown);
}

TEST(Oracle, FieldOverflowInsideAllocationIsSubObject)
{
    IrFunction f = IrBuilder::makeKernel("fieldoob", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto obj = b.alloca_(256, 4);
    auto field = b.fieldPtr(obj, 64, 16);
    b.store(b.gep(field, b.constInt(5)), b.constInt(1, Type::i32()));
    const ValueId access = f.blocks[0].insts[f.blocks[0].insts.size() - 1];
    b.ret();
    const analysis::AccessWitness w = witnessOf(f, access);
    EXPECT_EQ(w.verdict, AccessVerdict::SubObjectOOB);
    EXPECT_TRUE(w.has_field);
    EXPECT_EQ(w.field_lo, 64u);
    EXPECT_EQ(w.field_size, 16u);
}

TEST(Oracle, FieldEscapeBeyondAllocationIsSpatial)
{
    // Escaping the whole allocation dominates the field verdict.
    IrFunction f = IrBuilder::makeKernel("fieldspatial", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto obj = b.alloca_(256, 4);
    auto field = b.fieldPtr(obj, 64, 16);
    b.store(b.gep(field, b.constInt(64)), b.constInt(1, Type::i32()));
    const ValueId access = f.blocks[0].insts[f.blocks[0].insts.size() - 1];
    b.ret();
    EXPECT_EQ(witnessOf(f, access).verdict, AccessVerdict::SpatialOOB);
}

TEST(Oracle, PaddingStoreIsSpatialWithinPadding)
{
    // malloc(192) pads to 256: byte 196 escapes the requested size but
    // stays inside the pow2 chunk — the witness records the refinement
    // whole-allocation mechanisms are blind to.
    IrFunction f = IrBuilder::makeKernel("padding", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto p = b.malloc_(b.constInt(192), 4);
    b.store(b.gep(p, b.constInt(49)), b.constInt(1, Type::i32()));
    const ValueId access = f.blocks[0].insts[f.blocks[0].insts.size() - 1];
    b.ret();
    const analysis::AccessWitness w = witnessOf(f, access);
    EXPECT_EQ(w.verdict, AccessVerdict::SpatialOOB);
    EXPECT_TRUE(w.within_padding);
}

TEST(Oracle, ParamPointerAccessIsUnknown)
{
    IrFunction f =
        IrBuilder::makeKernel("parampt", {{"buf", Type::ptr(4)}});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    b.store(b.gep(b.param(0), b.constInt(0)), b.constInt(1, Type::i32()));
    const ValueId access = f.blocks[0].insts[f.blocks[0].insts.size() - 1];
    b.ret();
    EXPECT_EQ(witnessOf(f, access).verdict, AccessVerdict::Unknown);
}

TEST(Oracle, OracleLevelSurfacesViolationDiagnostics)
{
    // AnalysisLevel::Oracle folds verdicts into the pipeline report as
    // Severity::Violation diagnostics and defers the lint UAF
    // heuristic (no duplicate finding at warning severity).
    IrFunction f = IrBuilder::makeKernel("pipeline_uaf", {});
    IrBuilder b(f);
    b.setInsertPoint(b.block("entry"));
    auto p = b.malloc_(b.constInt(256), 4);
    b.free_(p);
    b.store(b.gep(p, b.constInt(0)), b.constInt(1, Type::i32()));
    b.ret();
    analysis::AnalysisOptions aopts;
    aopts.level = AnalysisLevel::Oracle;
    const analysis::AnalysisReport report = analysis::analyzeFunction(f, aopts);
    EXPECT_EQ(report.oracle_uaf, 1u);
    size_t violations = 0, lint_warnings = 0;
    for (const Diagnostic& d : report.diagnostics) {
        violations += d.severity == Severity::Violation;
        lint_warnings +=
            d.severity == Severity::Warning && d.pass == "lint";
    }
    EXPECT_EQ(violations, 1u);
    EXPECT_EQ(lint_warnings, 0u);
    // At Full level the lint heuristic still reports it.
    aopts.level = AnalysisLevel::Full;
    EXPECT_TRUE(hasDiag(analysis::analyzeFunction(f, aopts).diagnostics,
                        "after free"));
}

// ---------------------------------------------------------------------
// Attack-suite properties: twins and tier/thread invariance.
// ---------------------------------------------------------------------

TEST(AttackSuite, EveryBenignTwinIsProvenSafe)
{
    for (const AttackScenario& scenario : attackSuite()) {
        const IrModule m = scenario.build(/*benign=*/true);
        const IrFunction flat = inlineCalls(m, *m.find(scenario.kernel));
        const analysis::SafetyOracleReport report =
            analysis::analyzeSafety(flat);
        EXPECT_TRUE(report.allProvenSafe())
            << scenario.name << ": benign twin not fully proven safe";
    }
}

TEST(AttackSuite, EveryAttackCarriesItsPlantedVerdict)
{
    for (const AttackScenario& scenario : attackSuite()) {
        const IrModule m = scenario.build(/*benign=*/false);
        const IrFunction flat = inlineCalls(m, *m.find(scenario.kernel));
        const analysis::SafetyOracleReport report =
            analysis::analyzeSafety(flat);
        EXPECT_GE(report.count(scenario.expected), 1u)
            << scenario.name << ": oracle missed the planted "
            << analysis::accessVerdictName(scenario.expected);
    }
}

TEST(AttackSuite, DetectionInvariantAcrossTiersAndSimThreads)
{
    // Dynamic outcome (fault or clean) for each (scenario, variant,
    // mechanism) must not depend on the engine tier or the worker
    // count. Representative mechanism slice to keep runtime bounded.
    const std::vector<MechanismKind> kinds = {
        MechanismKind::Baseline, MechanismKind::Lmi,
        MechanismKind::LmiElide};
    for (const AttackScenario& scenario : attackSuite()) {
        for (bool benign : {false, true}) {
            const IrModule m = scenario.build(benign);
            for (MechanismKind kind : kinds) {
                int baseline_outcome = -1; // -1 unset, 0/1/2 below
                for (ExecutionTier tier : {ExecutionTier::Detailed,
                                           ExecutionTier::Functional}) {
                    for (unsigned threads : {1u, 2u}) {
                        int outcome; // 0 clean, 1 fault, 2 rejected
                        Device dev(makeMechanism(kind));
                        try {
                            const CompiledKernel ck =
                                dev.compile(m, scenario.kernel);
                            LaunchOptions lopts;
                            lopts.tier = tier;
                            lopts.sim_threads = threads;
                            const RunResult r = dev.launch(
                                ck, scenario.grid, scenario.block, {},
                                lopts);
                            outcome = r.faults.empty() ? 0 : 1;
                        } catch (const CompileError&) {
                            outcome = 2;
                        }
                        if (baseline_outcome < 0)
                            baseline_outcome = outcome;
                        EXPECT_EQ(outcome, baseline_outcome)
                            << scenario.name << '/'
                            << (benign ? "benign" : "attack")
                            << " under " << mechanismKindName(kind)
                            << " tier=" << executionTierName(tier)
                            << " threads=" << threads;
                    }
                }
            }
        }
    }
}

} // namespace
} // namespace lmi

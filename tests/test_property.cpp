/**
 * @file
 * Randomized property tests over the core invariants:
 *
 *  - microcode pack/unpack is the identity on every encodable
 *    instruction (randomized over opcodes, operands, hints, offsets);
 *  - the OCU never poisons an in-bounds update and always poisons an
 *    out-of-bounds one, for random buffers and offsets;
 *  - allocators never hand out overlapping live blocks, alignment and
 *    extent invariants hold under random alloc/free interleavings, and
 *    accounting stays consistent;
 *  - the liveness tracker's view matches a reference set under random
 *    traffic;
 *  - the 2^n layout engine never overlaps buffers and always size-aligns.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

// GCC 12's -Wrestrict false-positives on libstdc++'s inlined string
// append inside gtest assertion expansions (GCC bug 105651); harmless
// here, but it breaks the -Werror lint build.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include "alloc/global_allocator.hpp"
#include "alloc/layout.hpp"
#include "arch/microcode.hpp"
#include "common/rng.hpp"
#include "core/liveness.hpp"
#include "core/ocu.hpp"

namespace lmi {
namespace {

TEST(Property, MicrocodeRoundTripRandomized)
{
    Rng rng(0xC0DE);
    const Opcode ops[] = {Opcode::IADD,  Opcode::IADD3, Opcode::ISUB,
                          Opcode::IMUL,  Opcode::IMAD,  Opcode::IMNMX,
                          Opcode::SHL,   Opcode::SHR,   Opcode::LOP_AND,
                          Opcode::LOP_OR, Opcode::LOP_XOR, Opcode::MOV,
                          Opcode::ISETP, Opcode::FADD,  Opcode::FMUL,
                          Opcode::FFMA,  Opcode::LDG,   Opcode::STG,
                          Opcode::LDS,   Opcode::STS,   Opcode::LDL,
                          Opcode::STL,   Opcode::BAR,   Opcode::NOP};

    unsigned tested = 0;
    for (unsigned trial = 0; trial < 5000; ++trial) {
        Instruction inst;
        inst.op = ops[rng.below(std::size(ops))];
        inst.dst = int(rng.below(240));
        inst.guard_pred = rng.chance(0.2) ? int(rng.below(8)) : kNoPred;
        inst.guard_neg = rng.chance(0.5);
        inst.cmp = CmpOp(rng.below(6));
        inst.width = rng.chance(0.5) ? 4 : 8;
        inst.imm_offset = int64_t(rng.range(0, 1 << 20)) -
                          int64_t(1 << 19);
        inst.hints.active = rng.chance(0.3) && isIntAlu(inst.op);
        inst.hints.pointer_operand = rng.below(2);

        const unsigned nsrc = rng.below(unsigned(kMaxSrcs) + 1);
        for (unsigned i = 0; i < nsrc; ++i) {
            switch (rng.below(3)) {
              case 0:
                inst.src[i] = Operand::reg(unsigned(rng.below(240)));
                break;
              case 1:
                inst.src[i] = Operand::imm(rng.below(0xFFFFFFFFull));
                break;
              case 2:
                inst.src[i] = Operand::cbank(rng.below(0x800) * 8);
                break;
            }
        }
        if (!isEncodable(inst))
            continue; // e.g. two wide immediates — rejection is correct
        ++tested;

        const Instruction back = unpackMicrocode(packMicrocode(inst));
        ASSERT_EQ(back.op, inst.op);
        ASSERT_EQ(back.dst, inst.dst);
        ASSERT_EQ(back.guard_pred, inst.guard_pred);
        ASSERT_EQ(back.guard_neg, inst.guard_neg);
        ASSERT_EQ(back.cmp, inst.cmp);
        ASSERT_EQ(back.width, inst.width);
        ASSERT_EQ(back.imm_offset, inst.imm_offset);
        ASSERT_EQ(back.hints.active, inst.hints.active);
        if (inst.hints.active) {
            ASSERT_EQ(back.hints.pointer_operand,
                      inst.hints.pointer_operand);
        }
        for (unsigned i = 0; i < kMaxSrcs; ++i) {
            ASSERT_EQ(back.src[i].kind, inst.src[i].kind);
            ASSERT_EQ(back.src[i].value, inst.src[i].value);
        }
    }
    EXPECT_GT(tested, 3000u) << "too few encodable samples";
}

TEST(Property, OcuBoundaryRandomized)
{
    Rng rng(0xBEEF);
    const PointerCodec codec;
    Ocu ocu(codec);
    for (unsigned trial = 0; trial < 20000; ++trial) {
        const unsigned e = unsigned(rng.range(1, 20));
        const uint64_t size = codec.sizeForExtent(e);
        const uint64_t base = size * rng.range(1, 64);
        const uint64_t inner = rng.below(size);
        const uint64_t ptr = codec.encode(base + inner, size);

        // In-bounds update: never a violation.
        const uint64_t in_target = base + rng.below(size);
        const OcuResult ok = ocu.check(ptr, (ptr & kExtentMask) | in_target);
        ASSERT_FALSE(ok.violation)
            << "e=" << e << " base=" << base << " tgt=" << in_target;

        // Out-of-bounds update: always a violation.
        const bool above = rng.chance(0.5);
        const uint64_t out_target =
            above ? base + size + rng.below(size * 2)
                  : base - 1 - rng.below(std::min<uint64_t>(base - 1,
                                                            size));
        const OcuResult bad =
            ocu.check(ptr, (ptr & kExtentMask) | (out_target & kAddressMask));
        ASSERT_TRUE(bad.violation)
            << "e=" << e << " base=" << base << " tgt=" << out_target;
        ASSERT_EQ(PointerCodec::extentOf(bad.out), kPoisonSpatial);
    }
}

TEST(Property, GlobalAllocatorRandomTrafficInvariants)
{
    for (AllocPolicy policy :
         {AllocPolicy::Packed, AllocPolicy::Pow2Aligned}) {
        SCOPED_TRACE(policy == AllocPolicy::Packed ? "packed" : "pow2");
        GlobalAllocator::Config cfg;
        cfg.policy = policy;
        cfg.encode_extent = policy == AllocPolicy::Pow2Aligned;
        GlobalAllocator alloc(cfg);
        const PointerCodec codec;

        Rng rng(1234);
        std::map<uint64_t, uint64_t> live; // base -> reserved
        std::vector<uint64_t> handles;
        uint64_t expected_reserved = 0;

        for (unsigned step = 0; step < 4000; ++step) {
            if (handles.empty() || rng.chance(0.6)) {
                const uint64_t size = rng.range(1, 256 * 1024);
                const uint64_t ptr = alloc.alloc(size);
                ASSERT_NE(ptr, 0u);
                const uint64_t base = PointerCodec::addressOf(ptr);
                const AllocBlock* block = alloc.findLive(base);
                ASSERT_NE(block, nullptr);
                ASSERT_EQ(block->base, base);
                ASSERT_GE(block->reserved, size);

                if (policy == AllocPolicy::Pow2Aligned) {
                    ASSERT_TRUE(PointerCodec::isValid(ptr));
                    ASSERT_EQ(codec.sizeOf(ptr), block->reserved);
                    ASSERT_EQ(base % block->reserved, 0u);
                }
                // No overlap with any live block.
                auto next = live.lower_bound(base);
                if (next != live.end()) {
                    ASSERT_LE(base + block->reserved, next->first);
                }
                if (next != live.begin()) {
                    auto prev = std::prev(next);
                    ASSERT_LE(prev->first + prev->second, base);
                }
                live[base] = block->reserved;
                handles.push_back(ptr);
                expected_reserved += block->reserved;
            } else {
                const size_t victim = rng.below(handles.size());
                const uint64_t ptr = handles[victim];
                const uint64_t base =
                    policy == AllocPolicy::Pow2Aligned
                        ? codec.baseOf(ptr)
                        : PointerCodec::addressOf(ptr);
                expected_reserved -= live.at(base);
                live.erase(base);
                ASSERT_FALSE(alloc.free(ptr).has_value());
                handles.erase(handles.begin() + long(victim));
            }
            ASSERT_EQ(alloc.liveReservedBytes(), expected_reserved);
        }
    }
}

TEST(Property, LivenessMatchesReferenceSet)
{
    Rng rng(77);
    LivenessTracker tracker;
    const PointerCodec codec;
    std::set<uint64_t> reference; // live bases
    std::vector<std::pair<uint64_t, uint64_t>> live; // (ptr, size)
    uint64_t cursor = uint64_t(1) << 32;

    for (unsigned step = 0; step < 3000; ++step) {
        if (live.empty() || rng.chance(0.55)) {
            const uint64_t size = uint64_t(256) << rng.below(8);
            cursor = alignUp(cursor, size);
            const uint64_t ptr = codec.encode(cursor, size);
            cursor += size;
            tracker.onMalloc(ptr);
            reference.insert(codec.baseOf(ptr));
            live.emplace_back(ptr, size);
        } else {
            const size_t victim = rng.below(live.size());
            const auto [ptr, size] = live[victim];
            ASSERT_FALSE(tracker.onFree(ptr).has_value());
            reference.erase(codec.baseOf(ptr));
            live.erase(live.begin() + long(victim));
        }
        ASSERT_EQ(tracker.membershipEntries(), reference.size());
        // Spot-check membership through interior pointers.
        if (!live.empty()) {
            const auto [ptr, size] = live[rng.below(live.size())];
            ASSERT_TRUE(tracker.isLive(ptr + rng.below(size)));
        }
    }
}

TEST(Property, LayoutNeverOverlapsRandomized)
{
    Rng rng(99);
    for (unsigned trial = 0; trial < 300; ++trial) {
        std::vector<BufferSpec> specs;
        const unsigned n = unsigned(rng.range(1, 12));
        for (unsigned i = 0; i < n; ++i)
            specs.push_back({"b" + std::to_string(i),
                             rng.range(1, 64 * 1024)});
        for (AllocPolicy policy :
             {AllocPolicy::Packed, AllocPolicy::Pow2Aligned}) {
            const RegionLayout layout = layoutBuffers(specs, policy);
            std::vector<std::pair<uint64_t, uint64_t>> spans;
            for (const auto& b : layout.buffers) {
                ASSERT_GE(b.reserved, b.requested);
                ASSERT_LE(b.offset + b.reserved, layout.total_bytes);
                if (policy == AllocPolicy::Pow2Aligned) {
                    ASSERT_EQ(b.offset % b.reserved, 0u) << b.name;
                }
                spans.emplace_back(b.offset, b.offset + b.reserved);
            }
            std::sort(spans.begin(), spans.end());
            for (size_t i = 1; i < spans.size(); ++i)
                ASSERT_LE(spans[i - 1].second, spans[i].first);
        }
    }
}

TEST(Property, PointerCodecAlignedSizeIsMonotonic)
{
    const PointerCodec codec;
    uint64_t prev = 0;
    for (uint64_t size = 1; size <= (1 << 22); size += 997) {
        const uint64_t aligned = codec.alignedSize(size);
        ASSERT_GE(aligned, size);
        ASSERT_GE(aligned, prev >= size ? 0 : prev);
        ASSERT_TRUE(isPow2(aligned));
        prev = aligned;
    }
}

} // namespace
} // namespace lmi

/**
 * @file
 * Unit tests for the pointer-liveness tracker (paper §XII-C, Algorithm 1).
 */

#include <gtest/gtest.h>

#include "core/liveness.hpp"

namespace lmi {
namespace {

TEST(Liveness, TracksMallocAndFree)
{
    LivenessTracker t;
    const PointerCodec c;
    const uint64_t p = c.encode(0x10000, 256);
    t.onMalloc(p);
    EXPECT_TRUE(t.isLive(p));
    EXPECT_EQ(t.membershipEntries(), 1u);
    EXPECT_FALSE(t.onFree(p).has_value());
    EXPECT_FALSE(t.isLive(p));
    EXPECT_EQ(t.membershipEntries(), 0u);
}

TEST(Liveness, CopiedPointerUafIsCaught)
{
    // The scenario of Fig. 11: C = A + 1 survives free(A) with a valid
    // extent; the membership check still reports it dead.
    LivenessTracker t;
    const PointerCodec c;
    const uint64_t a = c.encode(0x10000, 256);
    t.onMalloc(a);
    const uint64_t copy = a + 4; // same extent, same UM bits
    ASSERT_FALSE(t.onFree(a).has_value());
    EXPECT_TRUE(PointerCodec::isValid(copy)); // base LMI would miss this
    EXPECT_FALSE(t.isLive(copy));             // the tracker does not
}

TEST(Liveness, DoubleFreeDetected)
{
    LivenessTracker t;
    const PointerCodec c;
    const uint64_t p = c.encode(0x20000, 512);
    t.onMalloc(p);
    EXPECT_FALSE(t.onFree(p).has_value());
    const MaybeFault f = t.onFree(p);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->kind, FaultKind::DoubleFree);
}

TEST(Liveness, InvalidFreeDetected)
{
    LivenessTracker t;
    const PointerCodec c;
    const uint64_t never_allocated = c.encode(0x30000, 256);
    const MaybeFault f = t.onFree(never_allocated);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->kind, FaultKind::InvalidFree);
}

TEST(Liveness, FreeOfZeroExtentPointerClassified)
{
    LivenessTracker t;
    const PointerCodec c;
    const uint64_t p = c.encode(0x40000, 256);
    t.onMalloc(p);
    EXPECT_FALSE(t.onFree(p).has_value());
    // A pointer whose extent was already cleared (e.g. freed through the
    // compiler-nullified alias) shows up as a double free.
    const uint64_t stale = PointerCodec::invalidate(p);
    const MaybeFault f = t.onFree(stale);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->kind, FaultKind::DoubleFree);
}

TEST(Liveness, ReallocationRevivesBase)
{
    LivenessTracker t;
    const PointerCodec c;
    const uint64_t p = c.encode(0x50000, 256);
    t.onMalloc(p);
    ASSERT_FALSE(t.onFree(p).has_value());
    // The allocator hands the same base out again.
    t.onMalloc(p);
    EXPECT_TRUE(t.isLive(p));
    EXPECT_FALSE(t.onFree(p).has_value()); // not a double free anymore
}

TEST(Liveness, PageInvalidationForLargeBuffers)
{
    LivenessTracker::Config cfg;
    cfg.page_invalidate_opt = true;
    cfg.page_size = 64 * 1024;
    LivenessTracker t(kDefaultCodec, cfg);
    const PointerCodec c;

    // 48 KB rounds to 64 KB: above pageSize/2, so no table entry — the
    // paper's example of a dedicated-page allocation.
    const uint64_t big = c.encode(uint64_t(64) * 1024 * 16, 48 * 1024);
    t.onMalloc(big);
    EXPECT_EQ(t.membershipEntries(), 0u);
    EXPECT_TRUE(t.isLive(big));

    ASSERT_FALSE(t.onFree(big).has_value());
    EXPECT_FALSE(t.isLive(big));
    EXPECT_GT(t.invalidatedPages(), 0u);

    // Interior copied pointer is also dead via the page map.
    EXPECT_FALSE(t.isLive(big + 4096));
}

TEST(Liveness, SmallBuffersStillUseTableUnderPageOpt)
{
    LivenessTracker::Config cfg;
    cfg.page_invalidate_opt = true;
    LivenessTracker t(kDefaultCodec, cfg);
    const PointerCodec c;
    const uint64_t small = c.encode(0x60000, 256);
    t.onMalloc(small);
    EXPECT_EQ(t.membershipEntries(), 1u);
    EXPECT_TRUE(t.isLive(small));
    ASSERT_FALSE(t.onFree(small).has_value());
    EXPECT_FALSE(t.isLive(small));
}

TEST(Liveness, PageRemappedOnReallocation)
{
    LivenessTracker::Config cfg;
    cfg.page_invalidate_opt = true;
    LivenessTracker t(kDefaultCodec, cfg);
    const PointerCodec c;
    const uint64_t base = uint64_t(64) * 1024 * 32;
    const uint64_t big = c.encode(base, 128 * 1024);
    t.onMalloc(big);
    ASSERT_FALSE(t.onFree(big).has_value());
    EXPECT_FALSE(t.isLive(big));
    t.onMalloc(big); // allocator reuses the block
    EXPECT_TRUE(t.isLive(big));
}

TEST(Liveness, PeakEntriesGauge)
{
    StatRegistry stats;
    LivenessTracker t(kDefaultCodec, {}, &stats);
    const PointerCodec c;
    const uint64_t a = c.encode(0x10000, 256);
    const uint64_t b = c.encode(0x10100, 256);
    t.onMalloc(a);
    t.onMalloc(b);
    ASSERT_FALSE(t.onFree(a).has_value());
    EXPECT_DOUBLE_EQ(stats.gauge("liveness.peak_entries"), 2.0);
}

} // namespace
} // namespace lmi

/**
 * @file
 * Unit tests for src/common: bit utilities, stats, RNG, table printer.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace lmi {
namespace {

TEST(BitUtil, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(uint64_t(1) << 63));
    EXPECT_FALSE(isPow2((uint64_t(1) << 63) + 1));
}

TEST(BitUtil, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(256), 8u);
    EXPECT_EQ(log2Floor(257), 8u);
    EXPECT_EQ(log2Floor(~uint64_t(0)), 63u);
}

TEST(BitUtil, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(256), 8u);
    EXPECT_EQ(log2Ceil(257), 9u);
}

TEST(BitUtil, RoundUpPow2)
{
    EXPECT_EQ(roundUpPow2(0), 1u);
    EXPECT_EQ(roundUpPow2(1), 1u);
    EXPECT_EQ(roundUpPow2(3), 4u);
    EXPECT_EQ(roundUpPow2(256), 256u);
    EXPECT_EQ(roundUpPow2(257), 512u);
    EXPECT_EQ(roundUpPow2(uint64_t(1) << 38), uint64_t(1) << 38);
}

TEST(BitUtil, AlignUpDown)
{
    EXPECT_EQ(alignUp(0, 256), 0u);
    EXPECT_EQ(alignUp(1, 256), 256u);
    EXPECT_EQ(alignUp(256, 256), 256u);
    EXPECT_EQ(alignDown(257, 256), 256u);
    EXPECT_EQ(alignDown(255, 256), 0u);
}

TEST(BitUtil, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(1), 1u);
    EXPECT_EQ(lowMask(8), 0xFFu);
    EXPECT_EQ(lowMask(64), ~uint64_t(0));
}

TEST(BitUtil, BitsOfInsertBitsRoundTrip)
{
    const uint64_t v = 0x0123'4567'89AB'CDEFull;
    EXPECT_EQ(bitsOf(v, 7, 0), 0xEFu);
    EXPECT_EQ(bitsOf(v, 63, 56), 0x01u);
    uint64_t w = insertBits(0, 31, 16, 0xBEEF);
    EXPECT_EQ(bitsOf(w, 31, 16), 0xBEEFu);
    EXPECT_EQ(bitsOf(w, 15, 0), 0u);
    w = insertBits(w, 31, 16, 0x1234);
    EXPECT_EQ(bitsOf(w, 31, 16), 0x1234u);
}

TEST(Stats, CountersAndGauges)
{
    StatRegistry r;
    EXPECT_EQ(r.counter("x"), 0u);
    r.inc("x");
    r.inc("x", 4);
    EXPECT_EQ(r.counter("x"), 5u);
    r.set("g", 2.5);
    EXPECT_DOUBLE_EQ(r.gauge("g"), 2.5);
    r.clear();
    EXPECT_EQ(r.counter("x"), 0u);
}

TEST(Stats, Merge)
{
    StatRegistry a, b;
    a.inc("n", 2);
    b.inc("n", 3);
    b.set("g", 1.0);
    a.merge(b);
    EXPECT_EQ(a.counter("n"), 5u);
    EXPECT_DOUBLE_EQ(a.gauge("g"), 1.0);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_THROW(geomean({1.0, 0.0}), FatalError);
}

TEST(Stats, OverheadPct)
{
    EXPECT_NEAR(overheadPct(110.0, 100.0), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(overheadPct(100.0, 100.0), 0.0);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const uint64_t v = rng.range(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Table, RendersAlignedColumns)
{
    TextTable t({"a", "bench"});
    t.addRow({"1", "x"});
    t.addRow({"22", "yy"});
    const std::string s = t.render();
    EXPECT_NE(s.find("| a  | bench |"), std::string::npos);
    EXPECT_NE(s.find("| 22 | yy    |"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, RejectsWrongArity)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtF(1.234, 2), "1.23");
    EXPECT_EQ(fmtPct(18.73), "18.73%");
    EXPECT_EQ(fmtX(32.98), "32.98x");
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(lmi_fatal("bad config value %d", 3), FatalError);
    try {
        lmi_fatal("value=%d", 7);
    } catch (const FatalError& e) {
        EXPECT_STREQ(e.what(), "value=7");
    }
}

} // namespace
} // namespace lmi

/**
 * @file
 * Cross-cutting integration tests:
 *
 *  - functional equivalence: every mechanism must compute the same
 *    kernel results as the baseline (protection must never change
 *    program semantics);
 *  - microcode encodability: every instruction the code generator emits
 *    for every Table V kernel must fit the 128-bit microcode format;
 *  - determinism: identical launches produce identical cycle counts;
 *  - abort semantics: a fault stops the launch and reports it first.
 */

#include <gtest/gtest.h>

#include "arch/microcode.hpp"
#include "ir/builder.hpp"
#include "mechanisms/registry.hpp"
#include "security/violations.hpp"
#include "workloads/workloads.hpp"

namespace lmi {
namespace {

using namespace ir;

/** A deterministic kernel with loops, divergence, shared and local use. */
IrModule
mixedKernel()
{
    IrFunction f = IrBuilder::makeKernel(
        "mixed", {{"in", Type::ptr(4)}, {"out", Type::ptr(4)},
                  {"n", Type::i64()}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto even = b.block("even");
    auto odd = b.block("odd");
    auto merge = b.block("merge");

    b.setInsertPoint(entry);
    auto in = b.param(0);
    auto out = b.param(1);
    auto t = b.gtid();
    auto tile = b.sharedBuffer("tile", 1024, 4);
    auto lbuf = b.alloca_(256, 4);
    auto x0 = b.load(b.gep(in, t));
    auto bit = b.iand(t, b.constInt(1));
    auto cond = b.icmp(CmpOp::EQ, bit, b.constInt(0));
    b.br(cond, even, odd);

    b.setInsertPoint(even);
    auto xe = b.imul(x0, b.constInt(3));
    b.jump(merge);

    b.setInsertPoint(odd);
    auto xo = b.iadd(x0, b.constInt(1000));
    b.jump(merge);

    b.setInsertPoint(merge);
    auto x = b.phi(Type::i64(), {{xe, even}, {xo, odd}});
    auto tslot = b.iand(b.tid(), b.constInt(255));
    b.store(b.gep(tile, tslot), x);
    b.barrier();
    auto y = b.load(b.gep(tile, tslot));
    auto lslot = b.iand(t, b.constInt(63));
    b.store(b.gep(lbuf, lslot), y);
    auto z = b.load(b.gep(lbuf, lslot));
    b.store(b.gep(out, t), z);
    b.ret();

    IrModule m;
    m.functions.push_back(std::move(f));
    return m;
}

std::vector<uint32_t>
runMixed(MechanismKind kind)
{
    Device dev(makeMechanism(kind));
    const unsigned n = 512;
    const uint64_t in = dev.cudaMalloc(n * 4);
    const uint64_t out = dev.cudaMalloc(n * 4);
    for (unsigned i = 0; i < n; ++i)
        dev.poke32(in + 4 * i, 7 * i + 3);
    const CompiledKernel k = dev.compile(mixedKernel(), "mixed");
    const RunResult r = dev.launch(k, 2, 256, {in, out, n});
    EXPECT_FALSE(r.faulted())
        << mechanismKindName(kind) << ": "
        << (r.faults.empty() ? "" : r.faults[0].detail);
    std::vector<uint32_t> values(n);
    for (unsigned i = 0; i < n; ++i)
        values[i] = dev.peek32(out + 4 * i);
    return values;
}

TEST(Integration, AllMechanismsComputeIdenticalResults)
{
    const std::vector<uint32_t> reference = runMixed(MechanismKind::Baseline);
    // Spot-check the reference itself.
    EXPECT_EQ(reference[0], (7u * 0 + 3) * 3);
    EXPECT_EQ(reference[1], (7u * 1 + 3) + 1000);

    for (MechanismKind kind :
         {MechanismKind::Lmi, MechanismKind::LmiLiveness,
          MechanismKind::GpuShield, MechanismKind::BaggySw,
          MechanismKind::Gmod, MechanismKind::CuCatch,
          MechanismKind::MemcheckDbi, MechanismKind::LmiDbi}) {
        SCOPED_TRACE(mechanismKindName(kind));
        EXPECT_EQ(runMixed(kind), reference);
    }
}

TEST(Integration, EveryWorkloadInstructionIsMicrocodeEncodable)
{
    for (const auto& profile : workloadSuite()) {
        SCOPED_TRACE(profile.name);
        for (MechanismKind kind :
             {MechanismKind::Baseline, MechanismKind::Lmi,
              MechanismKind::BaggySw, MechanismKind::CuCatch}) {
            Device dev(makeMechanism(kind));
            const CompiledKernel ck =
                dev.compile(buildWorkloadKernel(profile), profile.name);
            for (const Instruction& inst : ck.program.code) {
                ASSERT_TRUE(isEncodable(inst)) << inst.toString();
                // And the round trip preserves the hint bits.
                const Instruction back =
                    unpackMicrocode(packMicrocode(inst));
                ASSERT_EQ(back.hints.active, inst.hints.active);
                ASSERT_EQ(back.op, inst.op);
            }
        }
    }
}

TEST(Integration, LaunchesAreDeterministic)
{
    auto run = [] {
        Device dev(makeMechanism(MechanismKind::Lmi));
        const WorkloadRun r =
            runWorkload(dev, findWorkload("needle"), 0.25);
        return std::make_pair(r.result.cycles, r.result.instructions);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

TEST(Integration, FaultAbortsLaunchAndIsFirst)
{
    // A grid where exactly one thread overflows: the launch must abort
    // with that fault and report aborted = true.
    IrFunction f = IrBuilder::makeKernel(
        "one_bad", {{"buf", Type::ptr(4)}, {"bad", Type::i64()}});
    IrBuilder b(f);
    auto entry = b.block("entry");
    auto attack = b.block("attack");
    auto done = b.block("done");
    b.setInsertPoint(entry);
    auto pbuf = b.param(0);
    auto t = b.gtid();
    auto is_bad = b.icmp(CmpOp::EQ, t, b.param(1));
    b.br(is_bad, attack, done);
    b.setInsertPoint(attack);
    b.store(b.gep(pbuf, b.constInt(1 << 20)), b.constInt(1, Type::i32()));
    b.jump(done);
    b.setInsertPoint(done);
    b.store(b.gep(pbuf, t), t);
    b.ret();
    IrModule m;
    m.functions.push_back(std::move(f));

    Device dev(makeMechanism(MechanismKind::Lmi));
    const uint64_t buf = dev.cudaMalloc(4096);
    const CompiledKernel k = dev.compile(m, "one_bad");
    const RunResult r = dev.launch(k, 2, 128, {buf, 100});
    ASSERT_TRUE(r.faulted());
    EXPECT_TRUE(r.aborted);
    EXPECT_EQ(r.faults[0].kind, FaultKind::SpatialOverflow);
}

TEST(Integration, SecuritySuiteIsDeterministicAcrossRuns)
{
    const SecurityScore a = evaluateMechanism(MechanismKind::Lmi);
    const SecurityScore b = evaluateMechanism(MechanismKind::Lmi);
    EXPECT_EQ(a.spatialDetected(), b.spatialDetected());
    EXPECT_EQ(a.temporalDetected(), b.temporalDetected());
}

TEST(Integration, WorkloadsCleanUnderDbiMechanisms)
{
    for (const char* name : {"nn", "swin"}) {
        for (MechanismKind kind :
             {MechanismKind::MemcheckDbi, MechanismKind::LmiDbi}) {
            SCOPED_TRACE(std::string(name) + "/" + mechanismKindName(kind));
            Device dev(makeMechanism(kind));
            const WorkloadRun run =
                runWorkload(dev, findWorkload(name), 0.1);
            EXPECT_FALSE(run.result.faulted())
                << (run.result.faults.empty()
                        ? ""
                        : run.result.faults[0].detail);
        }
    }
}

TEST(Integration, HeapWorkloadRoundTrip)
{
    // A workload that exercises the device heap under LMI end to end.
    WorkloadProfile p = findWorkload("nn");
    p.heap_allocs = 1;
    p.heap_alloc_bytes = 300;
    Device dev(makeMechanism(MechanismKind::Lmi));
    const WorkloadRun run = runWorkload(dev, p, 0.1);
    EXPECT_FALSE(run.result.faulted());
    EXPECT_EQ(dev.heapAllocator().liveReservedBytes(), 0u);
}

} // namespace
} // namespace lmi

#!/usr/bin/env python3
"""Tier cross-validation gate (DESIGN.md, "Two-tier execution engine").

Compares a sampled-tier sweep CSV against a detailed-tier sweep of the
same cells and fails when the sampled tier's *relative* per-mechanism
slowdowns (cycles normalised to the same-workload baseline, the Fig. 12
quantity) drift further from the detailed tier's than the documented
bound, or when the absolute cycle estimates drift further than the
absolute bound. CI runs it after a paired sweep; locally:

    lmi_explore sweep 16.0 --workloads bfs,... --csv det.csv
    lmi_explore sweep 16.0 --workloads bfs,... --tier sampled --csv s.csv
    tools/check_tier_drift.py det.csv s.csv --rel-bound 5 --abs-bound 25
"""

import argparse
import csv
import sys


def load(path):
    cells = {}
    with open(path) as f:
        reader = csv.DictReader(r for r in f if not r.startswith("#"))
        for row in reader:
            if row["status"] == "ok":
                key = (row["workload"], row["mechanism"])
                cells[key] = int(row["cycles"])
    return cells


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("detailed_csv")
    ap.add_argument("sampled_csv")
    ap.add_argument("--rel-bound", type=float, required=True,
                    help="max %% error on baseline-relative slowdowns")
    ap.add_argument("--abs-bound", type=float, default=None,
                    help="max %% error on absolute cycle estimates")
    ap.add_argument("--known-bias", action="append", default=[],
                    metavar="WORKLOAD",
                    help="workload with a documented sampled-tier bias "
                         "(DESIGN.md): its cells are printed and "
                         "tracked in the summary but never fail the "
                         "gate")
    args = ap.parse_args()

    det = load(args.detailed_csv)
    samp = load(args.sampled_csv)
    missing = sorted(set(det) - set(samp))
    if missing:
        print(f"FAIL: {len(missing)} cells missing from sampled sweep: "
              f"{missing[:5]}")
        return 1

    failures = 0
    worst_rel = worst_abs = sum_rel = 0.0
    n = 0
    for (workload, mech), det_cycles in sorted(det.items()):
        waived = workload in args.known_bias
        samp_cycles = samp[(workload, mech)]
        abs_err = 100.0 * abs(samp_cycles - det_cycles) / det_cycles
        line = (f"{workload:12s} {mech:10s} "
                f"det={det_cycles:>10d} samp={samp_cycles:>10d} "
                f"abs_err={abs_err:6.2f}%")
        if not waived:
            worst_abs = max(worst_abs, abs_err)
            if args.abs_bound is not None and abs_err > args.abs_bound:
                line += f"  ABS>{args.abs_bound}%"
                failures += 1
        if mech != "baseline":
            det_base = det.get((workload, "baseline"))
            samp_base = samp.get((workload, "baseline"))
            if det_base and samp_base:
                det_slow = det_cycles / det_base
                samp_slow = samp_cycles / samp_base
                rel_err = 100.0 * abs(samp_slow - det_slow) / det_slow
                line += (f" det_slow={det_slow:6.3f}"
                         f" samp_slow={samp_slow:6.3f}"
                         f" rel_err={rel_err:6.2f}%")
                if not waived:
                    worst_rel = max(worst_rel, rel_err)
                    sum_rel += rel_err
                    n += 1
                    if rel_err > args.rel_bound:
                        line += f"  REL>{args.rel_bound}%"
                        failures += 1
        if waived:
            line += "  (known-bias: informational)"
        print(line)

    print(f"summary: worst_rel={worst_rel:.2f}% "
          f"mean_rel={sum_rel / max(n, 1):.2f}% "
          f"worst_abs={worst_abs:.2f}% slowdown_cells={n}")
    if failures:
        print(f"FAIL: {failures} bound violations")
        return 1
    print("OK: sampled tier within documented bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Detection-coverage gate (DESIGN.md, "Safety oracle & coverage matrix").

Compares `lmi_explore coverage --json` output against the golden matrix
tools/coverage_expected.json and fails when any cell's outcome changes:
the oracle verdict, the detected flag, the compile_rejected flag, the
fault kind, or the disagreement string. A non-empty disagreement in the
fresh run fails even if the golden file somehow recorded one — the
matrix must stay disagreement-free, not merely stable. CI runs it after
the coverage job; locally:

    build/tools/lmi_explore coverage --json coverage.json
    tools/check_coverage.py coverage.json
"""

import argparse
import json
import sys

PINNED = ("oracle", "detected", "compile_rejected", "fault",
          "disagreement")


def index(doc):
    return {(c["attack"], c["variant"], c["mechanism"], c["tier"]): c
            for c in doc["cells"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("coverage_json",
                    help="output of lmi_explore coverage --json")
    ap.add_argument("--expected", default="tools/coverage_expected.json")
    args = ap.parse_args()

    with open(args.coverage_json) as f:
        got_doc = json.load(f)
    with open(args.expected) as f:
        want_doc = json.load(f)

    failures = 0
    if got_doc.get("schema_version") != want_doc.get("schema_version"):
        print(f"FAIL: schema_version = {got_doc.get('schema_version')!r},"
              f" expected {want_doc.get('schema_version')!r}")
        failures += 1

    got = index(got_doc)
    want = index(want_doc)

    missing = sorted(set(want) - set(got))
    extra = sorted(set(got) - set(want))
    if missing:
        print(f"FAIL: cells missing from run: {missing[:5]}"
              f"{' ...' if len(missing) > 5 else ''}")
        failures += len(missing)
    if extra:
        print(f"FAIL: cells absent from golden file: {extra[:5]}"
              f"{' ...' if len(extra) > 5 else ''}")
        failures += len(extra)

    for key in sorted(set(want) & set(got)):
        w, g = want[key], got[key]
        for field in PINNED:
            if g.get(field) != w.get(field):
                print(f"FAIL: {'/'.join(key)}: {field} = "
                      f"{g.get(field)!r}, expected {w.get(field)!r}")
                failures += 1
        if g.get("disagreement"):
            print(f"FAIL: {'/'.join(key)}: oracle/dynamic disagreement: "
                  f"{g['disagreement']}")
            failures += 1

    if failures:
        print(f"FAIL: {failures} coverage mismatches against "
              f"{args.expected}")
        return 1
    print(f"OK: {len(want)} coverage cells match {args.expected} "
          f"(0 disagreements)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Litmus model-check gate (DESIGN.md, "Memory model").

Compares `lmi_explore check --json` output against the golden verdict
file tools/litmus_expected.json and fails when any test's verdict-level
result changes: the verdict string, the pass flag, the fault bits (uaf,
scope_race), or the explored outcome set. Exploration statistics
(executions, pruned, hit_bound) are deterministic but implementation-
defined, so drift there is printed as a note, never a failure. CI runs
it after the model-check job; locally:

    build/tools/lmi_explore check --json litmus.json
    tools/check_litmus.py litmus.json
"""

import argparse
import json
import sys

PINNED = ("verdict", "pass", "uaf", "scope_race", "events", "agents",
          "outcomes")
INFORMATIONAL = ("executions", "pruned", "hit_bound")


def index(doc):
    return {t["name"]: t for t in doc["tests"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("litmus_json",
                    help="output of lmi_explore check --json")
    ap.add_argument("--expected", default="tools/litmus_expected.json")
    args = ap.parse_args()

    with open(args.litmus_json) as f:
        got_doc = json.load(f)
    with open(args.expected) as f:
        want_doc = json.load(f)

    got = index(got_doc)
    want = index(want_doc)

    failures = 0
    missing = sorted(set(want) - set(got))
    extra = sorted(set(got) - set(want))
    if missing:
        print(f"FAIL: tests missing from run: {missing}")
        failures += len(missing)
    if extra:
        print(f"FAIL: tests absent from golden file: {extra}")
        failures += len(extra)

    for name in sorted(set(want) & set(got)):
        w, g = want[name], got[name]
        for key in PINNED:
            if g.get(key) != w.get(key):
                print(f"FAIL: {name}: {key} = {g.get(key)!r}, "
                      f"expected {w.get(key)!r}")
                failures += 1
        for key in INFORMATIONAL:
            if key in w and g.get(key) != w.get(key):
                print(f"note: {name}: {key} = {g.get(key)!r} "
                      f"(golden recorded {w.get(key)!r})")

    if failures:
        print(f"FAIL: {failures} litmus mismatches against "
              f"{args.expected}")
        return 1
    print(f"OK: {len(want)} litmus verdicts match {args.expected} "
          f"(bound {got_doc.get('bound')})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

/**
 * @file
 * lmi_explore — command-line front end for the library.
 *
 *   lmi_explore list
 *       Print the Table V workloads and the available mechanisms.
 *   lmi_explore run <workload> <mechanism> [scale]
 *       Execute one workload under one mechanism and print the run
 *       statistics (cycles, instruction mix, cache behaviour, faults).
 *   lmi_explore compare <workload> [scale]
 *       Run one workload under every hardware-comparison mechanism and
 *       print normalized execution times.
 *   lmi_explore disasm <workload> <mechanism>
 *       Print the generated SASS-like code (hint bits visible).
 *   lmi_explore security <mechanism>
 *       Run the 38-case violation suite and print per-case outcomes.
 *   lmi_explore trace <workload> <mechanism> [events]
 *       Capture an instruction trace (NVBit-style) and print the first
 *       N events plus the stream characterization.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/table.hpp"
#include "sim/trace.hpp"
#include "mechanisms/registry.hpp"
#include "security/violations.hpp"
#include "workloads/workloads.hpp"

using namespace lmi;

namespace {

const std::vector<MechanismKind> kAllMechanisms = {
    MechanismKind::Baseline,    MechanismKind::Lmi,
    MechanismKind::LmiLiveness, MechanismKind::GpuShield,
    MechanismKind::BaggySw,     MechanismKind::Gmod,
    MechanismKind::CuCatch,     MechanismKind::MemcheckDbi,
    MechanismKind::LmiDbi};

bool
parseMechanism(const std::string& name, MechanismKind* out)
{
    for (MechanismKind kind : kAllMechanisms) {
        if (name == mechanismKindName(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

int
usage()
{
    std::printf(
        "usage:\n"
        "  lmi_explore list\n"
        "  lmi_explore run <workload> <mechanism> [scale]\n"
        "  lmi_explore compare <workload> [scale]\n"
        "  lmi_explore disasm <workload> <mechanism>\n"
        "  lmi_explore security <mechanism>\n"
        "  lmi_explore trace <workload> <mechanism> [events]\n");
    return 2;
}

int
cmdList()
{
    TextTable table({"workload", "suite", "grid", "block", "traits"});
    for (const auto& p : workloadSuite()) {
        std::string traits;
        if (p.scattered)
            traits += "scattered ";
        if (p.shared_tile_bytes)
            traits += "shared ";
        if (p.local_buf_bytes)
            traits += "local ";
        if (p.heap_allocs)
            traits += "heap ";
        table.addRow({p.name, p.suite, std::to_string(p.grid_blocks),
                      std::to_string(p.block_threads),
                      traits.empty() ? "streaming" : traits});
    }
    std::printf("%s\nmechanisms:", table.render().c_str());
    for (MechanismKind kind : kAllMechanisms)
        std::printf(" %s", mechanismKindName(kind));
    std::printf("\n");
    return 0;
}

int
cmdRun(const std::string& workload, MechanismKind kind, double scale)
{
    Device dev(makeMechanism(kind));
    const WorkloadRun run = runWorkload(dev, findWorkload(workload), scale);
    const RunResult& r = run.result;

    TextTable table({"metric", "value"});
    table.addRow({"cycles", std::to_string(r.cycles)});
    table.addRow({"warp instructions", std::to_string(r.instructions)});
    table.addRow({"thread instructions",
                  std::to_string(r.thread_instructions)});
    table.addRow({"LDG/STG", std::to_string(r.ldg) + " / " +
                                 std::to_string(r.stg)});
    table.addRow({"LDS/STS", std::to_string(r.lds) + " / " +
                                 std::to_string(r.sts)});
    table.addRow({"LDL/STL", std::to_string(r.ldl) + " / " +
                                 std::to_string(r.stl)});
    table.addRow({"L1 hit rate",
                  fmtPct(100.0 * double(r.l1_hits) /
                         double(std::max<uint64_t>(
                             1, r.l1_hits + r.l1_misses)))});
    table.addRow({"L2 hit rate",
                  fmtPct(100.0 * double(r.l2_hits) /
                         double(std::max<uint64_t>(
                             1, r.l2_hits + r.l2_misses)))});
    table.addRow({"DRAM accesses", std::to_string(r.dram_accesses)});
    table.addRow({"peak reserved (host allocs)",
                  std::to_string(run.peak_reserved / 1024) + " KiB"});
    table.addRow({"faults", std::to_string(r.faults.size())});
    std::printf("%s", table.render().c_str());

    if (dev.stats().counter("ocu.checks"))
        std::printf("OCU checks: %llu (violations: %llu)\n",
                    static_cast<unsigned long long>(
                        dev.stats().counter("ocu.checks")),
                    static_cast<unsigned long long>(
                        dev.stats().counter("ocu.violations")));
    if (dev.stats().counter("gpushield.rcache_probes"))
        std::printf("RCache probes: %llu (misses: %llu)\n",
                    static_cast<unsigned long long>(
                        dev.stats().counter("gpushield.rcache_probes")),
                    static_cast<unsigned long long>(
                        dev.stats().counter("gpushield.rcache_misses")));
    return r.faulted() ? 1 : 0;
}

int
cmdCompare(const std::string& workload, double scale)
{
    const WorkloadProfile& profile = findWorkload(workload);
    uint64_t base = 0;
    {
        Device dev;
        base = runWorkload(dev, profile, scale).result.cycles;
    }
    TextTable table({"mechanism", "cycles", "normalized"});
    table.addRow({"baseline", std::to_string(base), "1.0000x"});
    for (MechanismKind kind : hardwareComparisonMechanisms()) {
        Device dev(makeMechanism(kind));
        const uint64_t cycles =
            runWorkload(dev, profile, scale).result.cycles;
        table.addRow({mechanismKindName(kind), std::to_string(cycles),
                      fmtF(double(cycles) / double(base), 4) + "x"});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

int
cmdDisasm(const std::string& workload, MechanismKind kind)
{
    Device dev(makeMechanism(kind));
    const WorkloadProfile& profile = findWorkload(workload);
    const CompiledKernel ck =
        dev.compile(buildWorkloadKernel(profile), profile.name);
    std::printf("%s", ck.program.disassemble().c_str());
    return 0;
}

int
cmdSecurity(MechanismKind kind)
{
    unsigned detected = 0;
    for (const ViolationCase& vcase : violationSuite()) {
        Device dev(makeMechanism(kind));
        const CaseOutcome outcome = vcase.run(dev);
        detected += outcome.detected();
        std::printf("%-42s %s%s\n", vcase.id.c_str(),
                    outcome.detected() ? "DETECTED" : "missed",
                    outcome.compile_rejected ? " (compile-time)" : "");
    }
    std::printf("total: %u/%zu\n", detected, violationSuite().size());
    return 0;
}

int
cmdTrace(const std::string& workload, MechanismKind kind, size_t events)
{
    Device dev(makeMechanism(kind));
    const WorkloadProfile profile = findWorkload(workload);
    WorkloadProfile small = profile;
    small.grid_blocks = std::min(small.grid_blocks, 4u);
    small.block_threads = std::min(small.block_threads, 64u);
    const uint64_t in = dev.cudaMalloc(small.elements() * 4 + 64);
    const uint64_t out = dev.cudaMalloc(small.elements() * 4 + 64);
    const CompiledKernel ck =
        dev.compile(buildWorkloadKernel(small), small.name);
    TraceRecorder recorder(events);
    const RunResult r =
        dev.launchTraced(ck, small.grid_blocks, small.block_threads,
                         {in, out, small.elements()}, recorder);
    for (const TraceEvent& e : recorder.events())
        std::printf("%s\n", traceEventToString(e).c_str());
    std::printf("... %llu events total\n\n",
                static_cast<unsigned long long>(recorder.totalSeen()));
    std::printf("%s", analyzeTrace(recorder.events()).toString().c_str());
    return r.faulted() ? 1 : 0;
}

} // namespace

int
main(int argc, char** argv)
{
    setVerbose(false);
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "run" && argc >= 4) {
            MechanismKind kind;
            if (!parseMechanism(argv[3], &kind))
                return usage();
            return cmdRun(argv[2], kind,
                          argc > 4 ? std::atof(argv[4]) : 0.5);
        }
        if (cmd == "compare" && argc >= 3)
            return cmdCompare(argv[2], argc > 3 ? std::atof(argv[3]) : 0.5);
        if (cmd == "disasm" && argc >= 4) {
            MechanismKind kind;
            if (!parseMechanism(argv[3], &kind))
                return usage();
            return cmdDisasm(argv[2], kind);
        }
        if (cmd == "trace" && argc >= 4) {
            MechanismKind kind;
            if (!parseMechanism(argv[3], &kind))
                return usage();
            return cmdTrace(argv[2], kind,
                            argc > 4 ? size_t(std::atoll(argv[4])) : 20);
        }
        if (cmd == "security" && argc >= 3) {
            MechanismKind kind;
            if (!parseMechanism(argv[2], &kind))
                return usage();
            return cmdSecurity(kind);
        }
    } catch (const FatalError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}

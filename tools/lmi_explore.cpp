/**
 * @file
 * lmi_explore — command-line front end for the library.
 *
 *   lmi_explore list
 *       Print the Table V workloads and the available mechanisms.
 *   lmi_explore run <workload> <mechanism> [scale]
 *       Execute one workload under one mechanism and print the run
 *       statistics (cycles, instruction mix, cache behaviour, faults).
 *   lmi_explore compare <workload> [scale]
 *       Run one workload under every hardware-comparison mechanism and
 *       print normalized execution times.
 *   lmi_explore sweep [scale] [--workloads a,b] [--mechanisms m1,m2]
 *                     [--csv FILE] [--json FILE]
 *       Run a full (workload x mechanism) grid through the
 *       ExperimentRunner and print/export the results.
 *   lmi_explore disasm <workload> <mechanism>
 *       Print the generated SASS-like code (hint bits visible).
 *   lmi_explore security <mechanism>
 *       Run the 38-case violation suite and print per-case outcomes.
 *   lmi_explore trace <workload> <mechanism> [events]
 *       Capture an instruction trace (NVBit-style) and print the first
 *       N events plus the stream characterization.
 *   lmi_explore verify [--workloads a,b] [--json FILE] [--severity S]
 *       Run the static-analysis pipeline (IR verifier, range analysis,
 *       lints) over every in-tree workload kernel, print diagnostics
 *       and per-kernel safety-classification counts, and exit non-zero
 *       when any diagnostic at or above the --severity threshold
 *       (note|warning|error, default error) is found (CI gate).
 *   lmi_explore races [--workloads a,b] [--seeded] [--dynamic]
 *                     [--json FILE]
 *       Run the barrier-aware static race/divergence analyzer over the
 *       workload kernels (plus the deliberately race-seeded variants
 *       with --seeded) and print per-kernel verdict counts. --dynamic
 *       additionally executes each kernel under the simulator's race
 *       sanitizer and reports the observed conflicts next to the
 *       static verdicts. Exits non-zero when a clean kernel has a
 *       ProvenRacy pair or divergent barrier (CI gate).
 *   lmi_explore check [test] [--bound N] [--json FILE]
 *       Run the bounded weak-memory model checker over the litmus
 *       family (or one named test) and compare verdicts against each
 *       test's expectation.
 *   lmi_explore coverage [--mechanisms m1,m2] [--tier T] [--csv FILE]
 *                        [--json FILE]
 *       Run the adversarial attack suite under every mechanism on both
 *       engine tiers (one tier with --tier), cross-check dynamic
 *       detections against the static safety oracle, and print the
 *       detection-coverage matrix. Exits non-zero on any
 *       oracle/dynamic disagreement (CI gate).
 *   lmi_explore churn [scale] [--workloads s1,s2] [--json FILE]
 *       Run the allocation-churn basket (workloads/churn.hpp) against
 *       the message-passing allocator and print per-spec throughput,
 *       remote-free drain statistics, and the deterministic digest.
 *       Exits non-zero when a live free faults (allocator bug).
 *
 * Global flags: `--jobs N` sizes the ExperimentRunner pool (compare,
 * sweep, security; 0 = all cores, default 1), `--sim-threads N` sets
 * the per-launch SM worker count (run, compare, sweep; byte-identical
 * results, clamped so jobs x sim_threads never oversubscribes the
 * host), `--cache DIR` points the on-disk result cache (also via
 * LMI_CACHE_DIR; sweeps only re-simulate cells whose
 * workload/mechanism/scale/config/tier fingerprint changed), and
 * `--tier detailed|functional|sampled` selects the execution tier
 * (run, compare, sweep, races --dynamic; see sim/launch_options.hpp —
 * functional skips all timing for speed, sampled interleaves detailed
 * slices with functional fast-forward and extrapolates cycles).
 * Unknown `--flags` are an error: usage goes to stderr, exit code 2.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "analysis/analysis.hpp"
#include "common/table.hpp"
#include "compiler/codegen.hpp"
#include "mechanisms/registry.hpp"
#include "runner/experiment_runner.hpp"
#include "security/coverage.hpp"
#include "security/violations.hpp"
#include "sim/trace.hpp"
#include "workloads/churn.hpp"
#include "workloads/litmus.hpp"
#include "workloads/workloads.hpp"

using namespace lmi;

namespace {

/** Flags shared by the sweep-shaped subcommands. */
struct GlobalOpts
{
    unsigned jobs = 1; ///< serial by default; 0 = all cores
    /** Worker threads inside each launch (0 = config/env default).
     *  Results are byte-identical for every value. */
    unsigned sim_threads = 0;
    std::string cache_dir;
    std::string csv_path;
    std::string json_path;
    std::string workloads_filter;  ///< comma-separated names
    std::string mechanisms_filter; ///< comma-separated names
    std::string severity = "error"; ///< verify exit-code threshold
    bool seeded = false;  ///< races: include race-seeded variants
    bool dynamic = false; ///< races: also run the dynamic sanitizer
    /** check: model-checker execution bound per litmus test. */
    uint64_t bound = 100000;
    /** Execution tier for every simulator launch the command makes. */
    ExecutionTier tier = ExecutionTier::Detailed;
    /** True when --tier was given (coverage defaults to both tiers). */
    bool tier_set = false;
    /** Sampled-tier schedule (--sampling P,W,D[,L]). */
    SamplingParams sampling;
};

/** LaunchOptions carrying the globally selected tier. */
LaunchOptions
tierOptions(const GlobalOpts& opts)
{
    LaunchOptions lopts;
    lopts.tier = opts.tier;
    lopts.sampling = opts.sampling;
    return lopts;
}

/** Parse "P,W,D[,L]" (period, warmup, detailed, light slices) for
 *  --sampling. L keeps its default when omitted. */
bool
parseSampling(const std::string& s, SamplingParams* out)
{
    SamplingParams p;
    const int got =
        std::sscanf(s.c_str(), "%u,%u,%u,%u", &p.period_slices,
                    &p.warmup_slices, &p.detailed_slices,
                    &p.light_slices);
    if (got < 3 || !p.valid())
        return false;
    *out = p;
    return true;
}

std::vector<std::string>
splitCommas(const std::string& s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t comma = s.find(',', start);
        const size_t end = comma == std::string::npos ? s.size() : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

int
usage()
{
    // Usage goes to stderr: an unknown subcommand is an error, and a
    // pipeline consuming stdout must not see the help text as data.
    // This is the single authoritative listing — every subcommand with
    // its flags, in dispatch order.
    std::fprintf(
        stderr,
        "usage:\n"
        "  lmi_explore list\n"
        "  lmi_explore run <workload> <mechanism> [scale]\n"
        "              [--sim-threads N] [--tier T] [--sampling P,W,D[,L]]\n"
        "  lmi_explore compare <workload> [scale] [--jobs N]\n"
        "              [--sim-threads N] [--tier T]\n"
        "  lmi_explore sweep [scale] [--jobs N] [--sim-threads N]\n"
        "              [--workloads a,b] [--mechanisms m1,m2]\n"
        "              [--cache DIR] [--tier T] [--sampling P,W,D[,L]]\n"
        "              [--csv FILE] [--json FILE]\n"
        "  lmi_explore disasm <workload> <mechanism>\n"
        "  lmi_explore trace <workload> <mechanism> [events]\n"
        "  lmi_explore verify [--workloads a,b] [--json FILE]\n"
        "              [--severity note|warning|error|violation]\n"
        "  lmi_explore races [--workloads a,b] [--seeded] [--dynamic]\n"
        "              [--tier T] [--json FILE]\n"
        "  lmi_explore check [test] [--bound N] [--json FILE]\n"
        "  lmi_explore security <mechanism> [--jobs N] [--tier T]\n"
        "  lmi_explore coverage [--mechanisms m1,m2] [--tier T]\n"
        "              [--csv FILE] [--json FILE]\n"
        "  lmi_explore churn [scale] [--workloads s1,s2] [--json FILE]\n"
        "global flags: --jobs N (0 = all cores), --sim-threads N,\n"
        "              --cache DIR, --tier detailed|functional|sampled,\n"
        "              --sampling P,W,D[,L] (sampled-tier schedule)\n"
        "  --jobs runs whole cells in parallel; --sim-threads\n"
        "  parallelizes SM execution inside each launch (results are\n"
        "  byte-identical; jobs x sim-threads is clamped to the host\n"
        "  cores); --tier trades timing fidelity for speed (functional\n"
        "  skips the timing model, sampled extrapolates cycles from\n"
        "  periodic detailed slices); coverage defaults to the\n"
        "  detailed+functional tier pair unless --tier narrows it\n"
        "unknown --flags exit 2 with this usage on stderr\n");
    return 2;
}

int
cmdList()
{
    TextTable table({"workload", "suite", "grid", "block", "traits"});
    for (const auto& p : workloadSuite()) {
        std::string traits;
        if (p.scattered)
            traits += "scattered ";
        if (p.shared_tile_bytes)
            traits += "shared ";
        if (p.local_buf_bytes)
            traits += "local ";
        if (p.heap_allocs)
            traits += "heap ";
        table.addRow({p.name, p.suite, std::to_string(p.grid_blocks),
                      std::to_string(p.block_threads),
                      traits.empty() ? "streaming" : traits});
    }
    std::printf("%s\nmechanisms:", table.render().c_str());
    for (MechanismKind kind : allMechanisms())
        std::printf(" %s", mechanismKindName(kind));
    std::printf("\n");
    return 0;
}

int
cmdRun(const std::string& workload, MechanismKind kind, double scale,
       const GlobalOpts& opts)
{
    Device dev(makeMechanism(kind));
    if (opts.sim_threads)
        dev.setSimThreads(opts.sim_threads);
    const WorkloadRun run =
        runWorkload(dev, findWorkload(workload), scale, RaceSeed::None,
                    tierOptions(opts));
    const RunResult& r = run.result;

    TextTable table({"metric", "value"});
    table.addRow({"tier", executionTierName(opts.tier)});
    table.addRow({"cycles", std::to_string(r.cycles)});
    table.addRow({"warp instructions", std::to_string(r.instructions)});
    table.addRow({"thread instructions",
                  std::to_string(r.thread_instructions)});
    table.addRow({"LDG/STG", std::to_string(r.ldg) + " / " +
                                 std::to_string(r.stg)});
    table.addRow({"LDS/STS", std::to_string(r.lds) + " / " +
                                 std::to_string(r.sts)});
    table.addRow({"LDL/STL", std::to_string(r.ldl) + " / " +
                                 std::to_string(r.stl)});
    table.addRow({"L1 hit rate",
                  fmtPct(100.0 * double(r.l1_hits) /
                         double(std::max<uint64_t>(
                             1, r.l1_hits + r.l1_misses)))});
    table.addRow({"L2 hit rate",
                  fmtPct(100.0 * double(r.l2_hits) /
                         double(std::max<uint64_t>(
                             1, r.l2_hits + r.l2_misses)))});
    table.addRow({"DRAM accesses", std::to_string(r.dram_accesses)});
    table.addRow({"peak reserved (host allocs)",
                  std::to_string(run.peak_reserved / 1024) + " KiB"});
    table.addRow({"faults", std::to_string(r.faults.size())});
    if (opts.tier == ExecutionTier::Sampled) {
        table.addRow({"sampled CPI",
                      fmtF(r.stats.gauge("sim.sampled.cpi"), 4)});
        table.addRow({"sampled ci95",
                      fmtPct(r.stats.gauge("sim.sampled.ci95_rel_pct"))});
    }
    std::printf("%s", table.render().c_str());

    if (dev.stats().counter("ocu.checks") ||
        dev.stats().counter("ocu.checks_elided"))
        std::printf("OCU checks: %llu (violations: %llu, elided: %llu)\n",
                    static_cast<unsigned long long>(
                        dev.stats().counter("ocu.checks")),
                    static_cast<unsigned long long>(
                        dev.stats().counter("ocu.violations")),
                    static_cast<unsigned long long>(
                        dev.stats().counter("ocu.checks_elided")));
    if (dev.stats().counter("gpushield.rcache_probes"))
        std::printf("RCache probes: %llu (misses: %llu)\n",
                    static_cast<unsigned long long>(
                        dev.stats().counter("gpushield.rcache_probes")),
                    static_cast<unsigned long long>(
                        dev.stats().counter("gpushield.rcache_misses")));
    return r.faulted() ? 1 : 0;
}

int
cmdCompare(const std::string& workload, double scale,
           const GlobalOpts& opts)
{
    SweepSpec spec;
    spec.workloads = {workload};
    spec.mechanisms.push_back(MechanismKind::Baseline);
    for (MechanismKind kind : hardwareComparisonMechanisms())
        spec.mechanisms.push_back(kind);
    spec.scales = {scale};
    spec.tier = opts.tier;
    spec.sampling = opts.sampling;
    spec.jobs = opts.jobs;
    spec.sim_threads = opts.sim_threads;
    spec.cache_dir = opts.cache_dir;
    const SweepResult sweep = runSweep(spec);

    const CellResult* base =
        sweep.find(workload, MechanismKind::Baseline, scale);
    if (!base || !base->ok) {
        std::fprintf(stderr, "error: baseline run failed: %s\n",
                     base ? base->error.c_str() : "missing cell");
        return 1;
    }
    TextTable table({"mechanism", "cycles", "normalized"});
    for (const CellResult& cell : sweep.cells) {
        if (!cell.ok) {
            table.addRow({mechanismKindName(cell.mechanism),
                          "error: " + cell.error, "-"});
            continue;
        }
        table.addRow({mechanismKindName(cell.mechanism),
                      std::to_string(cell.result.cycles),
                      fmtF(double(cell.result.cycles) /
                               double(base->result.cycles), 4) + "x"});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

int
cmdSweep(double scale, const GlobalOpts& opts)
{
    SweepSpec spec;
    if (!opts.workloads_filter.empty()) {
        spec.workloads = splitCommas(opts.workloads_filter);
    } else {
        for (const auto& profile : workloadSuite())
            spec.workloads.push_back(profile.name);
    }
    if (!opts.mechanisms_filter.empty()) {
        for (const std::string& name : splitCommas(opts.mechanisms_filter)) {
            MechanismKind kind;
            if (!mechanismFromName(name, &kind)) {
                std::fprintf(stderr, "error: unknown mechanism %s\n",
                             name.c_str());
                return 2;
            }
            spec.mechanisms.push_back(kind);
        }
    } else {
        spec.mechanisms.push_back(MechanismKind::Baseline);
        for (MechanismKind kind : hardwareComparisonMechanisms())
            spec.mechanisms.push_back(kind);
    }
    spec.scales = {scale};
    spec.tier = opts.tier;
    spec.sampling = opts.sampling;
    spec.jobs = opts.jobs;
    spec.sim_threads = opts.sim_threads;
    spec.cache_dir = opts.cache_dir;
    spec.progress = true;

    // Surface the effective pool size up front: asking for more job
    // workers than there are cells silently caps at the cell count.
    const size_t ncells = spec.workloads.size() *
                          spec.mechanisms.size() * spec.scales.size();
    if (opts.jobs > ncells)
        std::printf("note: --jobs %u exceeds the %zu-cell grid; "
                    "using %zu worker(s)\n",
                    opts.jobs, ncells, ncells);
    // The two thread axes share one budget; runSweep clamps the inner
    // pool when the product overshoots, so say so before the run.
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned jobs_eff = unsigned(std::min<size_t>(
        opts.jobs == 0 ? hw : opts.jobs, std::max<size_t>(ncells, 1)));
    if (opts.sim_threads &&
        uint64_t(jobs_eff) * opts.sim_threads > hw)
        std::fprintf(stderr,
                     "warning: %u sweep worker(s) x %u sim thread(s) "
                     "oversubscribes %u hardware thread(s); "
                     "sim_threads clamps to %u per cell\n",
                     jobs_eff, opts.sim_threads, hw,
                     std::max(1u, hw / jobs_eff));

    const SweepResult sweep = runSweep(spec);

    TextTable table({"workload", "mechanism", "cycles", "faults",
                     "status"});
    for (const CellResult& cell : sweep.cells) {
        table.addRow({cell.workload, mechanismKindName(cell.mechanism),
                      std::to_string(cell.result.cycles),
                      std::to_string(cell.result.faults.size()),
                      cell.ok ? (cell.from_cache ? "cached" : "ok")
                              : "error: " + cell.error});
    }
    std::printf("%s", table.render().c_str());
    std::printf("%zu cells, %.1f s wall, %zu cached, %zu failed, "
                "%zu over timeout\n",
                sweep.cells.size(), sweep.wall_ms / 1000.0,
                sweep.cache_hits, sweep.failures, sweep.timeouts);
    if (!opts.cache_dir.empty())
        std::printf("result cache: %zu hits, %zu misses\n",
                    sweep.cache_hits, sweep.cache_misses);

    if (!opts.csv_path.empty()) {
        std::ofstream out(opts.csv_path, std::ios::trunc);
        out << sweep.renderCsv();
        std::printf("wrote %s\n", opts.csv_path.c_str());
    }
    if (!opts.json_path.empty()) {
        std::ofstream out(opts.json_path, std::ios::trunc);
        out << sweep.renderJson();
        std::printf("wrote %s\n", opts.json_path.c_str());
    }
    return sweep.failures ? 1 : 0;
}

int
cmdDisasm(const std::string& workload, MechanismKind kind)
{
    Device dev(makeMechanism(kind));
    const WorkloadProfile& profile = findWorkload(workload);
    const CompiledKernel ck =
        dev.compile(buildWorkloadKernel(profile), profile.name);
    std::printf("%s", ck.program.disassemble().c_str());
    return 0;
}

int
cmdSecurity(MechanismKind kind, const GlobalOpts& opts)
{
    // Each case is one independent job on the ExperimentRunner pool:
    // a fresh Device per case, outcomes reported in suite order.
    const std::vector<ViolationCase>& suite = violationSuite();
    std::vector<CaseOutcome> outcomes(suite.size());
    std::vector<std::function<void()>> jobs;
    jobs.reserve(suite.size());
    for (size_t i = 0; i < suite.size(); ++i) {
        jobs.push_back([&suite, &outcomes, kind, i] {
            Device dev(makeMechanism(kind));
            outcomes[i] = suite[i].run(dev);
        });
    }
    ExperimentRunner::Options ropts;
    ropts.jobs = opts.jobs;
    ropts.label = "security";
    ExperimentRunner runner(ropts);
    const auto job_outcomes = runner.run(jobs);

    unsigned detected = 0;
    for (size_t i = 0; i < suite.size(); ++i) {
        if (!job_outcomes[i].ok) {
            std::printf("%-42s ERROR: %s\n", suite[i].id.c_str(),
                        job_outcomes[i].error.c_str());
            continue;
        }
        detected += outcomes[i].detected();
        std::printf("%-42s %s%s\n", suite[i].id.c_str(),
                    outcomes[i].detected() ? "DETECTED" : "missed",
                    outcomes[i].compile_rejected ? " (compile-time)" : "");
    }
    std::printf("total: %u/%zu\n", detected, suite.size());
    return 0;
}

/** Version of the machine-readable output of verify/races; bump on any
 *  field change so downstream CI parsers can detect drift.
 *  v3: top-level "tier" field (the execution tier behind any dynamic
 *  execution; static analysis itself is tier-free).
 *  v4: verify runs the safety oracle (AnalysisLevel::Oracle): per-kernel
 *  oracle_safe/oracle_spatial/oracle_subobject/oracle_uaf/
 *  oracle_unknown counts, and diagnostics may carry the new
 *  "violation" severity. */
constexpr int kDiagnosticsSchemaVersion = 4;

bool
severityFromName(const std::string& name, analysis::Severity* out)
{
    if (name == "note")
        *out = analysis::Severity::Note;
    else if (name == "warning")
        *out = analysis::Severity::Warning;
    else if (name == "error")
        *out = analysis::Severity::Error;
    else if (name == "violation")
        *out = analysis::Severity::Violation;
    else
        return false;
    return true;
}

int
cmdVerify(const GlobalOpts& opts)
{
    analysis::Severity threshold;
    if (!severityFromName(opts.severity, &threshold)) {
        std::fprintf(stderr,
                     "error: unknown severity %s "
                     "(expected note|warning|error|violation)\n",
                     opts.severity.c_str());
        return 2;
    }

    std::vector<std::string> names;
    if (!opts.workloads_filter.empty())
        names = splitCommas(opts.workloads_filter);
    else
        for (const auto& profile : workloadSuite())
            names.push_back(profile.name);

    // Oracle level: the Full pipeline plus the safety oracle, so
    // proven UAF/sub-object violations surface next to the spatial
    // ones and the oracle access-classification counts get reported.
    analysis::AnalysisOptions aopts;
    aopts.level = analysis::AnalysisLevel::Oracle;

    size_t total_errors = 0, total_warnings = 0, over_threshold = 0;
    std::string json = "{\n\"schema_version\": " +
                       std::to_string(kDiagnosticsSchemaVersion) +
                       ",\n\"tier\": \"" +
                       std::string(executionTierName(opts.tier)) +
                       "\",\n\"kernels\": [";
    TextTable table({"workload", "proven safe", "violating", "unknown",
                     "oracle safe", "oracle viol", "oracle unk",
                     "diagnostics"});
    for (size_t i = 0; i < names.size(); ++i) {
        const WorkloadProfile& profile = findWorkload(names[i]);
        const ir::IrModule m = buildWorkloadKernel(profile);
        const ir::IrFunction flat = inlineCalls(m, *m.find(profile.name));
        const analysis::AnalysisReport report =
            analysis::analyzeFunction(flat, aopts);

        size_t warnings = 0;
        for (const auto& d : report.diagnostics) {
            if (d.severity == analysis::Severity::Warning)
                ++warnings;
            if (d.severity >= threshold)
                ++over_threshold;
            std::printf("%s\n", d.toString().c_str());
        }
        total_errors += report.errors();
        total_warnings += warnings;
        const size_t oracle_viol = report.oracle_spatial +
                                   report.oracle_subobject +
                                   report.oracle_uaf;
        table.addRow({profile.name, std::to_string(report.proven_safe),
                      std::to_string(report.proven_violating),
                      std::to_string(report.unknown),
                      std::to_string(report.oracle_safe),
                      std::to_string(oracle_viol),
                      std::to_string(report.oracle_unknown),
                      std::to_string(report.diagnostics.size())});

        if (i)
            json += ",";
        json += "\n  {\"workload\": \"" + analysis::jsonEscape(profile.name) +
                "\", \"proven_safe\": " +
                std::to_string(report.proven_safe) +
                ", \"proven_violating\": " +
                std::to_string(report.proven_violating) +
                ", \"unknown\": " + std::to_string(report.unknown) +
                ", \"oracle_safe\": " +
                std::to_string(report.oracle_safe) +
                ", \"oracle_spatial\": " +
                std::to_string(report.oracle_spatial) +
                ", \"oracle_subobject\": " +
                std::to_string(report.oracle_subobject) +
                ", \"oracle_uaf\": " + std::to_string(report.oracle_uaf) +
                ", \"oracle_unknown\": " +
                std::to_string(report.oracle_unknown) +
                ", \"errors\": " + std::to_string(report.errors()) +
                ", \"diagnostics\": " +
                analysis::renderDiagnosticsJson(report.diagnostics) + "}";
    }
    json += "\n]\n}\n";

    std::printf("%s", table.render().c_str());
    std::printf("%zu kernels verified: %zu errors, %zu warnings "
                "(failing at severity >= %s: %zu)\n",
                names.size(), total_errors, total_warnings,
                analysis::severityName(threshold), over_threshold);
    if (!opts.json_path.empty()) {
        std::ofstream out(opts.json_path, std::ios::trunc);
        out << json;
        std::printf("wrote %s\n", opts.json_path.c_str());
    }
    return over_threshold ? 1 : 0;
}

int
cmdRaces(const GlobalOpts& opts)
{
    // The work list: every (filtered) clean profile, plus the seeded
    // variants when asked. Clean kernels gate the exit code; seeded
    // ones are expected to be flagged and never fail the run.
    struct Item
    {
        std::string name;
        WorkloadProfile profile;
        RaceSeed seed = RaceSeed::None;
    };
    std::vector<Item> items;
    if (!opts.workloads_filter.empty()) {
        for (const std::string& name : splitCommas(opts.workloads_filter))
            items.push_back({name, findWorkload(name), RaceSeed::None});
    } else {
        for (const auto& profile : workloadSuite())
            items.push_back({profile.name, profile, RaceSeed::None});
    }
    if (opts.seeded)
        for (const SeededWorkload& sw : raceSeededVariants())
            items.push_back({sw.name, sw.profile, sw.seed});

    size_t clean_flagged = 0;
    std::string json = "{\n\"schema_version\": " +
                       std::to_string(kDiagnosticsSchemaVersion) +
                       ",\n\"tier\": \"" +
                       std::string(executionTierName(opts.tier)) +
                       "\",\n\"kernels\": [";
    std::vector<std::string> header = {"workload", "pairs", "racy",
                                       "disjoint", "unknown", "div.bar"};
    if (opts.dynamic)
        header.push_back("dynamic conflicts");
    TextTable table(header);

    for (size_t i = 0; i < items.size(); ++i) {
        const Item& item = items[i];
        const ir::IrModule m =
            buildWorkloadKernel(item.profile, item.seed);
        const ir::IrFunction flat =
            inlineCalls(m, *m.find(item.profile.name));
        analysis::RaceAnalysisOptions ropts;
        ropts.block_threads = item.profile.block_threads;
        ropts.grid_blocks = item.profile.grid_blocks;
        const analysis::RaceReport report =
            analysis::analyzeRaces(flat, ropts);

        for (const auto& d : report.diagnostics)
            std::printf("%s\n", d.toString().c_str());

        const bool flagged =
            report.provenRacy() || !report.divergent_barriers.empty();
        if (item.seed == RaceSeed::None && flagged)
            ++clean_flagged;

        size_t dynamic_conflicts = 0;
        if (opts.dynamic) {
            // Execute the same kernel under the sanitizer; a divergent
            // barrier faults the launch, which counts as "flagged".
            // The sanitizer sees the same access stream on every tier,
            // so --tier functional makes this pass cheap.
            Device dev;
            RaceSanitizer sanitizer;
            LaunchOptions lopts = tierOptions(opts);
            lopts.sanitizer = &sanitizer;
            const WorkloadRun run =
                runWorkload(dev, item.profile, 0.25, item.seed, lopts);
            dynamic_conflicts = sanitizer.conflictCount();
            for (size_t r = 0;
                 r < std::min<size_t>(sanitizer.reports().size(), 2); ++r)
                std::printf("  dynamic: %s\n",
                            sanitizer.reports()[r].toString().c_str());
            if (run.result.faulted())
                std::printf("  dynamic: fault: %s\n",
                            run.result.faults[0].detail.c_str());
        }

        std::vector<std::string> row = {
            item.name, std::to_string(report.pairs.size()),
            std::to_string(report.provenRacy()),
            std::to_string(report.provenDisjoint()),
            std::to_string(report.unknown()),
            std::to_string(report.divergent_barriers.size())};
        if (opts.dynamic)
            row.push_back(std::to_string(dynamic_conflicts));
        table.addRow(row);

        if (i)
            json += ",";
        json += "\n  {\"workload\": \"" + analysis::jsonEscape(item.name) +
                "\", \"seed\": \"" + raceSeedName(item.seed) +
                "\", \"pairs\": " + std::to_string(report.pairs.size()) +
                ", \"racy\": " + std::to_string(report.provenRacy()) +
                ", \"disjoint\": " +
                std::to_string(report.provenDisjoint()) +
                ", \"unknown\": " + std::to_string(report.unknown()) +
                ", \"divergent_barriers\": " +
                std::to_string(report.divergent_barriers.size());
        if (opts.dynamic)
            json += ", \"dynamic_conflicts\": " +
                    std::to_string(dynamic_conflicts);
        json += ", \"diagnostics\": " +
                analysis::renderDiagnosticsJson(report.diagnostics) + "}";
    }
    json += "\n]\n}\n";

    std::printf("%s", table.render().c_str());
    std::printf("%zu kernels analyzed, %zu clean kernels flagged\n",
                items.size(), clean_flagged);
    if (!opts.json_path.empty()) {
        std::ofstream out(opts.json_path, std::ios::trunc);
        out << json;
        std::printf("wrote %s\n", opts.json_path.c_str());
    }
    return clean_flagged ? 1 : 0;
}

/** Machine-readable litmus output version; bump on field changes so
 *  tools/check_litmus.py can detect drift. */
constexpr int kLitmusSchemaVersion = 1;

std::string
tupleJson(const std::vector<uint64_t>& tuple)
{
    std::string out = "[";
    for (size_t i = 0; i < tuple.size(); ++i)
        out += (i ? "," : "") + std::to_string(tuple[i]);
    return out + "]";
}

int
cmdCheck(const std::string& test_name, const GlobalOpts& opts)
{
    std::vector<LitmusResult> results;
    if (test_name.empty()) {
        results = runLitmusSuite(opts.bound);
    } else {
        results.push_back(runLitmus(findLitmus(test_name), opts.bound));
    }

    std::string json = "{\n\"schema_version\": " +
                       std::to_string(kLitmusSchemaVersion) +
                       ",\n\"bound\": " + std::to_string(opts.bound) +
                       ",\n\"tests\": [";
    TextTable table({"test", "events", "executions", "pruned",
                     "outcomes", "verdict"});
    size_t failed = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        const LitmusResult& r = results[i];
        failed += !r.pass;
        table.addRow({r.name, std::to_string(r.events),
                      std::to_string(r.report.executions) +
                          (r.report.hit_bound ? "+" : ""),
                      std::to_string(r.report.pruned),
                      std::to_string(r.report.outcomes.size()),
                      r.verdict});
        for (const auto& f : r.report.faults)
            std::printf("  %s: %s\n", r.name.c_str(),
                        f.toString().c_str());
        for (const auto& race : r.report.races)
            std::printf("  %s: %s\n", r.name.c_str(),
                        race.toString().c_str());

        std::string outcomes;
        for (const auto& tuple : r.report.outcomes)
            outcomes += (outcomes.empty() ? "" : ",") + tupleJson(tuple);
        std::string faults;
        for (const auto& f : r.report.faults)
            faults += (faults.empty() ? "" : ",") + std::string("\"") +
                      analysis::jsonEscape(f.toString()) + "\"";
        if (i)
            json += ",";
        json += "\n  {\"name\": \"" + analysis::jsonEscape(r.name) +
                "\", \"verdict\": \"" + r.verdict +
                "\", \"pass\": " + (r.pass ? "true" : "false") +
                ", \"events\": " + std::to_string(r.events) +
                ", \"agents\": " + std::to_string(r.report.agents) +
                ", \"executions\": " +
                std::to_string(r.report.executions) +
                ", \"pruned\": " + std::to_string(r.report.pruned) +
                ", \"hit_bound\": " +
                (r.report.hit_bound ? "true" : "false") +
                ", \"sim_outcome\": " + tupleJson(r.sim_outcome) +
                ", \"outcomes\": [" + outcomes + "]" +
                ", \"uaf\": " + (r.uaf_found ? "true" : "false") +
                ", \"scope_race\": " + (r.race_found ? "true" : "false") +
                ", \"faults\": [" + faults + "]}";
    }
    json += "\n]\n}\n";

    std::printf("%s", table.render().c_str());
    std::printf("%zu litmus tests, %zu mismatched "
                "(bound %llu per test)\n",
                results.size(), failed,
                static_cast<unsigned long long>(opts.bound));
    if (!opts.json_path.empty()) {
        std::ofstream out(opts.json_path, std::ios::trunc);
        out << json;
        std::printf("wrote %s\n", opts.json_path.c_str());
    }
    return failed ? 1 : 0;
}

int
cmdCoverage(const GlobalOpts& opts)
{
    std::vector<MechanismKind> mechanisms;
    for (const std::string& name : splitCommas(opts.mechanisms_filter)) {
        MechanismKind kind;
        if (!mechanismFromName(name, &kind)) {
            std::fprintf(stderr, "error: unknown mechanism %s\n",
                         name.c_str());
            return 2;
        }
        mechanisms.push_back(kind);
    }
    // Default: the full registry on both tiers whose detection
    // semantics must agree; --tier narrows to one for quick runs.
    std::vector<ExecutionTier> tiers;
    if (opts.tier_set)
        tiers.push_back(opts.tier);

    const CoverageMatrix matrix = runCoverage(mechanisms, tiers);

    std::printf("%s", matrix.renderTable().c_str());
    std::printf("legend: X = runtime fault, C = compile-time "
                "rejection, . = missed, ! = benign twin flagged\n");
    for (const CoverageCell& c : matrix.cells)
        if (!c.disagreement.empty())
            std::printf("disagreement: %s %s under %s (%s): %s\n",
                        c.attack.c_str(), c.benign ? "benign" : "attack",
                        mechanismKindName(c.mechanism),
                        executionTierName(c.tier),
                        c.disagreement.c_str());
    const size_t disagreements = matrix.disagreements();
    std::printf("%zu cells, %zu disagreements\n", matrix.cells.size(),
                disagreements);

    if (!opts.csv_path.empty()) {
        std::ofstream out(opts.csv_path, std::ios::trunc);
        out << matrix.renderCsv();
        std::printf("wrote %s\n", opts.csv_path.c_str());
    }
    if (!opts.json_path.empty()) {
        std::ofstream out(opts.json_path, std::ios::trunc);
        out << matrix.renderJson();
        std::printf("wrote %s\n", opts.json_path.c_str());
    }
    return disagreements ? 1 : 0;
}

int
cmdTrace(const std::string& workload, MechanismKind kind, size_t events)
{
    Device dev(makeMechanism(kind));
    const WorkloadProfile profile = findWorkload(workload);
    WorkloadProfile small = profile;
    small.grid_blocks = std::min(small.grid_blocks, 4u);
    small.block_threads = std::min(small.block_threads, 64u);
    const uint64_t in = dev.cudaMalloc(small.elements() * 4 + 64);
    const uint64_t out = dev.cudaMalloc(small.elements() * 4 + 64);
    const CompiledKernel ck =
        dev.compile(buildWorkloadKernel(small), small.name);
    TraceRecorder recorder(events);
    LaunchOptions lopts;
    lopts.trace = &recorder;
    const RunResult r =
        dev.launch(ck, small.grid_blocks, small.block_threads,
                   {in, out, small.elements()}, lopts);
    for (const TraceEvent& e : recorder.events())
        std::printf("%s\n", traceEventToString(e).c_str());
    std::printf("... %llu events total\n\n",
                static_cast<unsigned long long>(recorder.totalSeen()));
    std::printf("%s", analyzeTrace(recorder.events()).toString().c_str());
    return r.faulted() ? 1 : 0;
}

int
cmdChurn(double scale, const GlobalOpts& opts)
{
    std::vector<ChurnSpec> specs;
    if (opts.workloads_filter.empty()) {
        for (const ChurnSpec& s : churnBasket())
            specs.push_back(scaleChurnSpec(s, scale));
    } else {
        for (const std::string& name :
             splitCommas(opts.workloads_filter))
            specs.push_back(scaleChurnSpec(findChurnSpec(name), scale));
    }

    TextTable table({"spec", "ops", "ops_per_sec", "oom", "stale_faults",
                     "remote_drained", "drain_calls", "frag", "digest"});
    bool bad = false;
    std::vector<ChurnResult> results;
    for (const ChurnSpec& s : specs) {
        const ChurnResult r = runChurn(s);
        if (r.unexpected_faults) {
            std::fprintf(stderr, "error: %s: %llu live frees faulted\n",
                         s.name.c_str(),
                         (unsigned long long)r.unexpected_faults);
            bad = true;
        }
        char digest[32];
        std::snprintf(digest, sizeof digest, "%016llx",
                      (unsigned long long)r.digest);
        table.addRow({s.name, std::to_string(r.ops),
                      fmtF(r.opsPerSec(), 0), std::to_string(r.oom),
                      std::to_string(r.stale_faults),
                      std::to_string(r.remote_drained),
                      std::to_string(r.drain_calls),
                      fmtPct(100.0 * r.fragmentation), digest});
        results.push_back(r);
    }
    std::printf("%s", table.render().c_str());

    if (!opts.json_path.empty()) {
        std::ofstream out(opts.json_path, std::ios::trunc);
        out << "{\n  \"scale\": " << scale << ",\n  \"specs\": {\n";
        for (size_t i = 0; i < specs.size(); ++i) {
            const ChurnResult& r = results[i];
            char digest[32];
            std::snprintf(digest, sizeof digest, "%016llx",
                          (unsigned long long)r.digest);
            out << "    \"" << specs[i].name << "\": {\"ops\": " << r.ops
                << ", \"ops_per_sec\": " << fmtF(r.opsPerSec(), 1)
                << ", \"oom\": " << r.oom
                << ", \"stale_faults\": " << r.stale_faults
                << ", \"remote_posted\": " << r.remote_posted
                << ", \"remote_drained\": " << r.remote_drained
                << ", \"fragmentation\": " << fmtF(r.fragmentation, 4)
                << ", \"digest\": \"" << digest << "\"}"
                << (i + 1 < specs.size() ? "," : "") << "\n";
        }
        out << "  }\n}\n";
        std::printf("wrote %s\n", opts.json_path.c_str());
    }
    return bad ? 1 : 0;
}

} // namespace

int
main(int argc, char** argv)
{
    setVerbose(false);

    // Strip global flags; what remains are the positional arguments.
    GlobalOpts opts;
    if (const char* dir = std::getenv("LMI_CACHE_DIR"))
        opts.cache_dir = dir;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto flagValue = [&](const char* flag, std::string* out) {
            if (arg != flag || i + 1 >= argc)
                return false;
            *out = argv[++i];
            return true;
        };
        std::string value;
        if (flagValue("--jobs", &value))
            opts.jobs = unsigned(std::atoi(value.c_str()));
        else if (flagValue("--sim-threads", &value))
            opts.sim_threads = unsigned(std::atoi(value.c_str()));
        else if (flagValue("--tier", &value)) {
            opts.tier_set = true;
            if (!parseExecutionTier(value, &opts.tier)) {
                std::fprintf(stderr,
                             "error: unknown tier %s (expected "
                             "detailed|functional|sampled)\n",
                             value.c_str());
                return usage();
            }
        } else if (flagValue("--sampling", &value)) {
            if (!parseSampling(value, &opts.sampling)) {
                std::fprintf(stderr,
                             "error: bad --sampling %s (expected "
                             "P,W,D[,L] with W+D+L <= P, D >= 1)\n",
                             value.c_str());
                return usage();
            }
        } else if (flagValue("--cache", &opts.cache_dir) ||
                   flagValue("--csv", &opts.csv_path) ||
                   flagValue("--json", &opts.json_path) ||
                   flagValue("--workloads", &opts.workloads_filter) ||
                   flagValue("--mechanisms", &opts.mechanisms_filter) ||
                   flagValue("--severity", &opts.severity))
            ;
        else if (flagValue("--bound", &value))
            opts.bound = uint64_t(std::atoll(value.c_str()));
        else if (arg == "--seeded")
            opts.seeded = true;
        else if (arg == "--dynamic")
            opts.dynamic = true;
        else if (arg.rfind("--", 0) == 0) {
            // An unrecognized flag must not fall through to the
            // positionals: it would silently reparse as a workload or
            // scale. Reject loudly, usage on stderr.
            std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
            return usage();
        } else
            args.push_back(arg);
    }

    if (args.empty())
        return usage();
    const std::string cmd = args[0];
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "run" && args.size() >= 3) {
            MechanismKind kind;
            if (!mechanismFromName(args[2], &kind))
                return usage();
            return cmdRun(args[1], kind,
                          args.size() > 3 ? std::atof(args[3].c_str())
                                          : 0.5,
                          opts);
        }
        if (cmd == "compare" && args.size() >= 2)
            return cmdCompare(args[1],
                              args.size() > 2 ? std::atof(args[2].c_str())
                                              : 0.5,
                              opts);
        if (cmd == "sweep")
            return cmdSweep(args.size() > 1 ? std::atof(args[1].c_str())
                                            : 0.5,
                            opts);
        if (cmd == "disasm" && args.size() >= 3) {
            MechanismKind kind;
            if (!mechanismFromName(args[2], &kind))
                return usage();
            return cmdDisasm(args[1], kind);
        }
        if (cmd == "trace" && args.size() >= 3) {
            MechanismKind kind;
            if (!mechanismFromName(args[2], &kind))
                return usage();
            return cmdTrace(args[1], kind,
                            args.size() > 3
                                ? size_t(std::atoll(args[3].c_str()))
                                : 20);
        }
        if (cmd == "verify")
            return cmdVerify(opts);
        if (cmd == "races")
            return cmdRaces(opts);
        if (cmd == "check")
            return cmdCheck(args.size() > 1 ? args[1] : "", opts);
        if (cmd == "coverage")
            return cmdCoverage(opts);
        if (cmd == "churn")
            return cmdChurn(args.size() > 1 ? std::atof(args[1].c_str())
                                            : 1.0,
                            opts);
        if (cmd == "security" && args.size() >= 2) {
            MechanismKind kind;
            if (!mechanismFromName(args[1], &kind))
                return usage();
            return cmdSecurity(kind, opts);
        }
    } catch (const FatalError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}

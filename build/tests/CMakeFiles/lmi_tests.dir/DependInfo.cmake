
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alloc.cpp" "tests/CMakeFiles/lmi_tests.dir/test_alloc.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_alloc.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/lmi_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_compiler.cpp" "tests/CMakeFiles/lmi_tests.dir/test_compiler.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_compiler.cpp.o.d"
  "/root/repo/tests/test_hwcost.cpp" "tests/CMakeFiles/lmi_tests.dir/test_hwcost.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_hwcost.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/lmi_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_ir.cpp" "tests/CMakeFiles/lmi_tests.dir/test_ir.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_ir.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/lmi_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_liveness.cpp" "tests/CMakeFiles/lmi_tests.dir/test_liveness.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_liveness.cpp.o.d"
  "/root/repo/tests/test_mechanisms.cpp" "tests/CMakeFiles/lmi_tests.dir/test_mechanisms.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_mechanisms.cpp.o.d"
  "/root/repo/tests/test_memsys.cpp" "tests/CMakeFiles/lmi_tests.dir/test_memsys.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_memsys.cpp.o.d"
  "/root/repo/tests/test_ocu.cpp" "tests/CMakeFiles/lmi_tests.dir/test_ocu.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_ocu.cpp.o.d"
  "/root/repo/tests/test_optimizer.cpp" "tests/CMakeFiles/lmi_tests.dir/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_optimizer.cpp.o.d"
  "/root/repo/tests/test_parser.cpp" "tests/CMakeFiles/lmi_tests.dir/test_parser.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_parser.cpp.o.d"
  "/root/repo/tests/test_pointer.cpp" "tests/CMakeFiles/lmi_tests.dir/test_pointer.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_pointer.cpp.o.d"
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/lmi_tests.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_property.cpp.o.d"
  "/root/repo/tests/test_security.cpp" "tests/CMakeFiles/lmi_tests.dir/test_security.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_security.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/lmi_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_subobject.cpp" "tests/CMakeFiles/lmi_tests.dir/test_subobject.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_subobject.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/lmi_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/lmi_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/lmi_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lmi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lmi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/lmi_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/lmi_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lmi_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/lmi_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lmi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mechanisms/CMakeFiles/lmi_mechanisms.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lmi_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/lmi_security.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcost/CMakeFiles/lmi_hwcost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for lmi_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/compiler_pass_demo.dir/compiler_pass_demo.cpp.o"
  "CMakeFiles/compiler_pass_demo.dir/compiler_pass_demo.cpp.o.d"
  "compiler_pass_demo"
  "compiler_pass_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_pass_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

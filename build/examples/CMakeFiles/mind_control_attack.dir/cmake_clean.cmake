file(REMOVE_RECURSE
  "CMakeFiles/mind_control_attack.dir/mind_control_attack.cpp.o"
  "CMakeFiles/mind_control_attack.dir/mind_control_attack.cpp.o.d"
  "mind_control_attack"
  "mind_control_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mind_control_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

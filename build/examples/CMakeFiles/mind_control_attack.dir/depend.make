# Empty dependencies file for mind_control_attack.
# This may be replaced when dependencies are built.

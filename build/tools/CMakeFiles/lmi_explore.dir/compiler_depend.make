# Empty compiler generated dependencies file for lmi_explore.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lmi_explore.dir/lmi_explore.cpp.o"
  "CMakeFiles/lmi_explore.dir/lmi_explore.cpp.o.d"
  "lmi_explore"
  "lmi_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmi_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblmi_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lmi_sim.dir/device.cpp.o"
  "CMakeFiles/lmi_sim.dir/device.cpp.o.d"
  "CMakeFiles/lmi_sim.dir/gpu.cpp.o"
  "CMakeFiles/lmi_sim.dir/gpu.cpp.o.d"
  "CMakeFiles/lmi_sim.dir/trace.cpp.o"
  "CMakeFiles/lmi_sim.dir/trace.cpp.o.d"
  "liblmi_sim.a"
  "liblmi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

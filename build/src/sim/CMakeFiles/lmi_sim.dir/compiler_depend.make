# Empty compiler generated dependencies file for lmi_sim.
# This may be replaced when dependencies are built.

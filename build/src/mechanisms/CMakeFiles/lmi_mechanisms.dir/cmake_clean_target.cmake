file(REMOVE_RECURSE
  "liblmi_mechanisms.a"
)

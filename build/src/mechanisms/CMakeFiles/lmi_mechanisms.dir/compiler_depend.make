# Empty compiler generated dependencies file for lmi_mechanisms.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lmi_mechanisms.dir/dbi.cpp.o"
  "CMakeFiles/lmi_mechanisms.dir/dbi.cpp.o.d"
  "CMakeFiles/lmi_mechanisms.dir/gpushield.cpp.o"
  "CMakeFiles/lmi_mechanisms.dir/gpushield.cpp.o.d"
  "CMakeFiles/lmi_mechanisms.dir/lmi_mechanism.cpp.o"
  "CMakeFiles/lmi_mechanisms.dir/lmi_mechanism.cpp.o.d"
  "CMakeFiles/lmi_mechanisms.dir/registry.cpp.o"
  "CMakeFiles/lmi_mechanisms.dir/registry.cpp.o.d"
  "CMakeFiles/lmi_mechanisms.dir/software.cpp.o"
  "CMakeFiles/lmi_mechanisms.dir/software.cpp.o.d"
  "liblmi_mechanisms.a"
  "liblmi_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmi_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

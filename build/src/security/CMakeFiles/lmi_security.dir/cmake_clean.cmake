file(REMOVE_RECURSE
  "CMakeFiles/lmi_security.dir/violations.cpp.o"
  "CMakeFiles/lmi_security.dir/violations.cpp.o.d"
  "liblmi_security.a"
  "liblmi_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmi_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblmi_security.a"
)

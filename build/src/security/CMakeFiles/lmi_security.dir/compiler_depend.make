# Empty compiler generated dependencies file for lmi_security.
# This may be replaced when dependencies are built.

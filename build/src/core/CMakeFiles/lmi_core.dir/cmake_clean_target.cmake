file(REMOVE_RECURSE
  "liblmi_core.a"
)

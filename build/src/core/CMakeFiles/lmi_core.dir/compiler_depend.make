# Empty compiler generated dependencies file for lmi_core.
# This may be replaced when dependencies are built.

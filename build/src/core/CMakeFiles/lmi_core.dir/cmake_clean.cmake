file(REMOVE_RECURSE
  "CMakeFiles/lmi_core.dir/fault.cpp.o"
  "CMakeFiles/lmi_core.dir/fault.cpp.o.d"
  "liblmi_core.a"
  "liblmi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblmi_compiler.a"
)

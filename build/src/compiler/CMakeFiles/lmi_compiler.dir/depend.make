# Empty dependencies file for lmi_compiler.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lmi_compiler.dir/codegen.cpp.o"
  "CMakeFiles/lmi_compiler.dir/codegen.cpp.o.d"
  "CMakeFiles/lmi_compiler.dir/instrument.cpp.o"
  "CMakeFiles/lmi_compiler.dir/instrument.cpp.o.d"
  "CMakeFiles/lmi_compiler.dir/optimizer.cpp.o"
  "CMakeFiles/lmi_compiler.dir/optimizer.cpp.o.d"
  "CMakeFiles/lmi_compiler.dir/pointer_analysis.cpp.o"
  "CMakeFiles/lmi_compiler.dir/pointer_analysis.cpp.o.d"
  "liblmi_compiler.a"
  "liblmi_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmi_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lmi_common.
# This may be replaced when dependencies are built.

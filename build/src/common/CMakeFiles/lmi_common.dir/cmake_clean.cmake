file(REMOVE_RECURSE
  "CMakeFiles/lmi_common.dir/logging.cpp.o"
  "CMakeFiles/lmi_common.dir/logging.cpp.o.d"
  "CMakeFiles/lmi_common.dir/stats.cpp.o"
  "CMakeFiles/lmi_common.dir/stats.cpp.o.d"
  "CMakeFiles/lmi_common.dir/table.cpp.o"
  "CMakeFiles/lmi_common.dir/table.cpp.o.d"
  "liblmi_common.a"
  "liblmi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblmi_common.a"
)

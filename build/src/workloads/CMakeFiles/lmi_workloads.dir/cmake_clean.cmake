file(REMOVE_RECURSE
  "CMakeFiles/lmi_workloads.dir/workloads.cpp.o"
  "CMakeFiles/lmi_workloads.dir/workloads.cpp.o.d"
  "liblmi_workloads.a"
  "liblmi_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmi_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lmi_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblmi_workloads.a"
)

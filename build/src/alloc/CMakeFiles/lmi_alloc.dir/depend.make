# Empty dependencies file for lmi_alloc.
# This may be replaced when dependencies are built.

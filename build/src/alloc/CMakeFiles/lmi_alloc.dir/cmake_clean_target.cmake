file(REMOVE_RECURSE
  "liblmi_alloc.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lmi_alloc.dir/device_heap.cpp.o"
  "CMakeFiles/lmi_alloc.dir/device_heap.cpp.o.d"
  "CMakeFiles/lmi_alloc.dir/global_allocator.cpp.o"
  "CMakeFiles/lmi_alloc.dir/global_allocator.cpp.o.d"
  "CMakeFiles/lmi_alloc.dir/layout.cpp.o"
  "CMakeFiles/lmi_alloc.dir/layout.cpp.o.d"
  "liblmi_alloc.a"
  "liblmi_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmi_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lmi_hwcost.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lmi_hwcost.dir/hwcost.cpp.o"
  "CMakeFiles/lmi_hwcost.dir/hwcost.cpp.o.d"
  "liblmi_hwcost.a"
  "liblmi_hwcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmi_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

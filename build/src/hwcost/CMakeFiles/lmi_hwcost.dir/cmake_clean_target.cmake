file(REMOVE_RECURSE
  "liblmi_hwcost.a"
)

# Empty dependencies file for lmi_ir.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblmi_ir.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lmi_ir.dir/builder.cpp.o"
  "CMakeFiles/lmi_ir.dir/builder.cpp.o.d"
  "CMakeFiles/lmi_ir.dir/ir.cpp.o"
  "CMakeFiles/lmi_ir.dir/ir.cpp.o.d"
  "CMakeFiles/lmi_ir.dir/parser.cpp.o"
  "CMakeFiles/lmi_ir.dir/parser.cpp.o.d"
  "liblmi_ir.a"
  "liblmi_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmi_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

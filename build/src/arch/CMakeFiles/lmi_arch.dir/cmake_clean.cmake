file(REMOVE_RECURSE
  "CMakeFiles/lmi_arch.dir/isa.cpp.o"
  "CMakeFiles/lmi_arch.dir/isa.cpp.o.d"
  "CMakeFiles/lmi_arch.dir/microcode.cpp.o"
  "CMakeFiles/lmi_arch.dir/microcode.cpp.o.d"
  "liblmi_arch.a"
  "liblmi_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmi_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

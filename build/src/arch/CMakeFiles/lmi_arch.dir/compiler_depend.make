# Empty compiler generated dependencies file for lmi_arch.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblmi_arch.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/isa.cpp" "src/arch/CMakeFiles/lmi_arch.dir/isa.cpp.o" "gcc" "src/arch/CMakeFiles/lmi_arch.dir/isa.cpp.o.d"
  "/root/repo/src/arch/microcode.cpp" "src/arch/CMakeFiles/lmi_arch.dir/microcode.cpp.o" "gcc" "src/arch/CMakeFiles/lmi_arch.dir/microcode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lmi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lmi_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for fig01_region_mix.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig01_region_mix.dir/fig01_region_mix.cpp.o"
  "CMakeFiles/fig01_region_mix.dir/fig01_region_mix.cpp.o.d"
  "fig01_region_mix"
  "fig01_region_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_region_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig01_region_mix.cpp" "bench/CMakeFiles/fig01_region_mix.dir/fig01_region_mix.cpp.o" "gcc" "bench/CMakeFiles/fig01_region_mix.dir/fig01_region_mix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/lmi_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/lmi_security.dir/DependInfo.cmake"
  "/root/repo/build/src/mechanisms/CMakeFiles/lmi_mechanisms.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lmi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/lmi_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lmi_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/lmi_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/lmi_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lmi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcost/CMakeFiles/lmi_hwcost.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lmi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for xii_b_cast_scan.

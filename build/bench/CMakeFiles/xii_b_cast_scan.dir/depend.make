# Empty dependencies file for xii_b_cast_scan.
# This may be replaced when dependencies are built.

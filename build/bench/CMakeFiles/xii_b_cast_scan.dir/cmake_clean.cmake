file(REMOVE_RECURSE
  "CMakeFiles/xii_b_cast_scan.dir/xii_b_cast_scan.cpp.o"
  "CMakeFiles/xii_b_cast_scan.dir/xii_b_cast_scan.cpp.o.d"
  "xii_b_cast_scan"
  "xii_b_cast_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xii_b_cast_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig05_device_heap.
# This may be replaced when dependencies are built.

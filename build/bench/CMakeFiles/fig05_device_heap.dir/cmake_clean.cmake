file(REMOVE_RECURSE
  "CMakeFiles/fig05_device_heap.dir/fig05_device_heap.cpp.o"
  "CMakeFiles/fig05_device_heap.dir/fig05_device_heap.cpp.o.d"
  "fig05_device_heap"
  "fig05_device_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_device_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig12_perf_comparison.
# This may be replaced when dependencies are built.

# Empty dependencies file for table03_security.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table03_security.dir/table03_security.cpp.o"
  "CMakeFiles/table03_security.dir/table03_security.cpp.o.d"
  "table03_security"
  "table03_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

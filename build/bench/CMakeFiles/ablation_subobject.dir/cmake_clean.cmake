file(REMOVE_RECURSE
  "CMakeFiles/ablation_subobject.dir/ablation_subobject.cpp.o"
  "CMakeFiles/ablation_subobject.dir/ablation_subobject.cpp.o.d"
  "ablation_subobject"
  "ablation_subobject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subobject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

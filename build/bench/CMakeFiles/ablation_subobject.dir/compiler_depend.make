# Empty compiler generated dependencies file for ablation_subobject.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_ocu_micro.
# This may be replaced when dependencies are built.

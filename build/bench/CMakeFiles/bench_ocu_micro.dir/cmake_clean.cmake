file(REMOVE_RECURSE
  "CMakeFiles/bench_ocu_micro.dir/bench_ocu_micro.cpp.o"
  "CMakeFiles/bench_ocu_micro.dir/bench_ocu_micro.cpp.o.d"
  "bench_ocu_micro"
  "bench_ocu_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ocu_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table06_hw_overhead.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table06_hw_overhead.dir/table06_hw_overhead.cpp.o"
  "CMakeFiles/table06_hw_overhead.dir/table06_hw_overhead.cpp.o.d"
  "table06_hw_overhead"
  "table06_hw_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_hw_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table02_comparison.dir/table02_comparison.cpp.o"
  "CMakeFiles/table02_comparison.dir/table02_comparison.cpp.o.d"
  "table02_comparison"
  "table02_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

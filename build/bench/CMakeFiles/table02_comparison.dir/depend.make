# Empty dependencies file for table02_comparison.
# This may be replaced when dependencies are built.

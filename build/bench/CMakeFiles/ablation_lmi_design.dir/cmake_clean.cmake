file(REMOVE_RECURSE
  "CMakeFiles/ablation_lmi_design.dir/ablation_lmi_design.cpp.o"
  "CMakeFiles/ablation_lmi_design.dir/ablation_lmi_design.cpp.o.d"
  "ablation_lmi_design"
  "ablation_lmi_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lmi_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_lmi_design.
# This may be replaced when dependencies are built.
